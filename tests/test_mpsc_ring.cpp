/// \file test_mpsc_ring.cpp
/// \brief Tests for the bounded lock-free submission ring (util/mpsc_ring.hpp)
/// and the allocation-freedom of the Engine's warm single-job submit path
/// (certified by the global allocation counter from bench_common.hpp).

// Exactly one TU per binary may define this before including
// bench_common.hpp: it replaces the global operator new/delete with
// counting versions.
#define BMH_COUNT_ALLOCS

#include "../bench/bench_common.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "engine/engine_api.hpp"
#include "util/mpsc_ring.hpp"

namespace bmh {
namespace {

// ------------------------------------------------------------- mechanics ---

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRing, FifoAcrossManyWraparounds) {
  // A capacity-4 ring cycled 100 times exercises the sequence-number
  // recycling on every slot many times over; order must stay FIFO.
  MpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
  // Partially full across the wrap boundary.
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(ring.try_push(2 * round));
    ASSERT_TRUE(ring.try_push(2 * round + 1));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, 2 * round);
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, 2 * round + 1);
  }
}

TEST(MpscRing, TryPushReportsFullWithoutConsumingAPosition) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(99));  // repeated failures stay failures
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  // The freed slot is immediately claimable, and FIFO order holds: the
  // failed pushes left no ghost positions in front of the new item.
  ASSERT_TRUE(ring.try_push(4));
  for (int expected = 1; expected <= 4; ++expected) {
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, expected);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, BlockingPushWaitsForCapacityThenSucceeds) {
  MpscRing<int> ring(2);
  ring.push(0);
  ring.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ring.push(2);  // blocks: ring is full
    pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
}

TEST(MpscRing, MultiProducerItemsArriveExactlyOnceAndPerProducerFifo) {
  // 4 producers x 2000 blocking pushes through a 64-slot ring, one
  // consumer. Every item must arrive exactly once, and each producer's
  // items must arrive in the order it pushed them (the ring is FIFO per
  // claimed position; positions of one thread are claimed in program
  // order).
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  MpscRing<std::uint64_t> ring(64);
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ring.push((p << 32) | i);
    });
  std::vector<std::uint64_t> next_expected(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t producer = item >> 32;
    const std::uint64_t seq = item & 0xffffffffu;
    ASSERT_LT(producer, kProducers);
    ASSERT_EQ(seq, next_expected[producer]) << "per-producer FIFO violated";
    ++next_expected[producer];
    ++received;
  }
  for (std::thread& t : producers) t.join();
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));
}

TEST(MpscRing, ConcurrentConsumersDrainExactlyOnce) {
  // The engine drains with several workers and recycles freelist indices
  // from both ends — the pop side must be safe for concurrent consumers.
  constexpr std::uint64_t kItems = 20000;
  MpscRing<std::uint64_t> ring(128);
  std::vector<std::atomic<std::uint32_t>> seen(kItems);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      std::uint64_t item = 0;
      for (;;) {
        if (ring.try_pop(item)) {
          seen[item].fetch_add(1, std::memory_order_relaxed);
          drained.fetch_add(1, std::memory_order_relaxed);
        } else if (done_producing.load(std::memory_order_acquire) &&
                   drained.load(std::memory_order_relaxed) >= kItems) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < 2; ++p)
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = p; i < kItems; i += 2) ring.push(std::uint64_t{i});
    });
  for (std::thread& t : producers) t.join();
  done_producing.store(true, std::memory_order_release);
  for (std::thread& t : consumers) t.join();
  for (std::uint64_t i = 0; i < kItems; ++i)
    ASSERT_EQ(seen[i].load(std::memory_order_relaxed), 1u) << "item " << i;
}

// -------------------------------------------------- engine submission path ---

/// Parks the engine's (single) worker inside a delivery callback so the
/// submission side can be exercised with the consumer frozen: capacity
/// limits become observable and the submitting thread's allocations can be
/// counted without worker noise.
struct WorkerGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  std::function<void(JobResult&&)> blocker() {
    return [this](JobResult&&) {
      std::unique_lock<std::mutex> lock(mutex);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
  }
  void await_entered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return entered; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
};

[[nodiscard]] JobSpec tiny_job() {
  return parse_job_spec_line("input=gen:cycle:n=8 algo=greedy quality=0 seed=7");
}

TEST(EngineSubmitRing, WarmSubmitPerformsZeroHeapAllocations) {
  EngineConfig config;
  config.threads = 1;
  config.submit_queue_depth = 8;
  Engine engine(config);
  ASSERT_EQ(engine.submit_capacity(), 8u);

  WorkerGate gate;
  std::atomic<int> done{0};
  engine.submit(tiny_job(), gate.blocker());
  gate.await_entered();  // the worker is now parked inside the callback

  // Everything the submits need is constructed up front; the measured
  // window covers only the try_submit calls themselves. The callback's
  // capture is one pointer — trivially copyable and within std::function's
  // small-object buffer, so moving it into the slot allocates nothing.
  constexpr int kJobs = 8;
  std::vector<JobSpec> jobs;
  std::vector<std::function<void(JobResult&&)>> callbacks;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(tiny_job());
    callbacks.emplace_back(
        [&done](JobResult&&) { done.fetch_add(1, std::memory_order_relaxed); });
  }

  // No gtest machinery inside the measured window — record, assert after.
  bool all_accepted = true;
  const bench::AllocStats before = bench::alloc_stats();
  for (int i = 0; i < kJobs; ++i)
    all_accepted &=
        engine.try_submit(std::move(jobs[static_cast<std::size_t>(i)]),
                          std::move(callbacks[static_cast<std::size_t>(i)]));
  const bench::AllocStats after = bench::alloc_stats();
  EXPECT_TRUE(all_accepted);
  EXPECT_EQ(after.allocations, before.allocations)
      << "a warm single-job submit must not allocate";

  gate.release();
  while (done.load(std::memory_order_acquire) < kJobs)
    std::this_thread::yield();
}

TEST(EngineSubmitRing, FreelistRecyclesSlotsIndefinitely) {
  // 100 jobs through a 4-slot ring: every slot is reused ~25 times, and
  // the blocking submit absorbs the capacity waits.
  EngineConfig config;
  config.threads = 1;
  config.submit_queue_depth = 4;
  Engine engine(config);
  ASSERT_EQ(engine.submit_capacity(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    engine.submit(tiny_job(), [&done](JobResult&& r) {
      ASSERT_TRUE(r.ok) << r.error;
      done.fetch_add(1, std::memory_order_relaxed);
    });
  while (done.load(std::memory_order_acquire) < 100) std::this_thread::yield();
  EXPECT_EQ(engine.stats().jobs_run, 100u);
}

TEST(EngineSubmitRing, TrySubmitBackpressureLeavesArgumentsIntact) {
  EngineConfig config;
  config.threads = 1;
  config.submit_queue_depth = 4;
  Engine engine(config);

  WorkerGate gate;
  std::atomic<int> done{0};
  engine.submit(tiny_job(), gate.blocker());
  gate.await_entered();
  const auto count = [&done](JobResult&&) {
    done.fetch_add(1, std::memory_order_relaxed);
  };
  // Fill every submission slot (the parked job's slot was already
  // recycled when the worker claimed it).
  for (std::size_t i = 0; i < engine.submit_capacity(); ++i) {
    JobSpec job = tiny_job();
    ASSERT_TRUE(engine.try_submit(std::move(job), count));
  }
  // Full: try_submit must fail fast and hand both arguments back usable.
  JobSpec rejected = tiny_job();
  rejected.name = "keepme";
  std::function<void(JobResult&&)> rejected_done = count;
  EXPECT_FALSE(engine.try_submit(std::move(rejected), std::move(rejected_done)));
  EXPECT_EQ(rejected.name, "keepme");
  EXPECT_EQ(rejected.input.spec, "gen:cycle:n=8");
  EXPECT_TRUE(static_cast<bool>(rejected_done));

  gate.release();
  while (done.load(std::memory_order_acquire) <
         static_cast<int>(engine.submit_capacity()))
    std::this_thread::yield();
  // Capacity is back; the previously rejected job goes through.
  ASSERT_TRUE(engine.try_submit(std::move(rejected), std::move(rejected_done)));
  while (done.load(std::memory_order_acquire) <
         static_cast<int>(engine.submit_capacity()) + 1)
    std::this_thread::yield();
}

TEST(EngineSubmitRing, FailedTrySubmitDoesNotAdvanceDerivationIndex) {
  EngineConfig config;
  config.threads = 1;
  config.submit_queue_depth = 4;
  Engine engine(config);

  WorkerGate gate;
  engine.submit(tiny_job(), gate.blocker());  // auto index 0
  gate.await_entered();
  std::atomic<int> done{0};
  const auto count = [&done](JobResult&&) {
    done.fetch_add(1, std::memory_order_relaxed);
  };
  for (int i = 0; i < 4; ++i) {
    JobSpec job = tiny_job();
    ASSERT_TRUE(engine.try_submit(std::move(job), count));  // indices 1..4
  }
  JobSpec overflow = tiny_job();
  std::function<void(JobResult&&)> overflow_done = count;
  ASSERT_FALSE(engine.try_submit(std::move(overflow), std::move(overflow_done)));

  gate.release();
  while (done.load(std::memory_order_acquire) < 4) std::this_thread::yield();
  // The failed attempt must not have burned an index: the next auto-indexed
  // submit derives from position 5, with no hole at 5 left by the failure.
  std::promise<std::size_t> index_seen;
  engine.submit(tiny_job(), [&index_seen](JobResult&& r) {
    index_seen.set_value(r.index);
  });
  EXPECT_EQ(index_seen.get_future().get(), 5u);
}

TEST(EngineSubmitRing, EightThreadSubmitDrainStressFulfilsEveryPromiseOnce) {
  // 8 producers x 250 jobs through a deliberately small ring on a small
  // pool: heavy slot recycling, constant backpressure, and per-submission
  // exactly-once accounting via explicit derivation indices.
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = 250;
  EngineConfig config;
  config.threads = 4;
  config.submit_queue_depth = 16;
  Engine engine(config);

  std::vector<std::atomic<std::uint32_t>> fired(kProducers * kPerProducer);
  for (auto& f : fired) f.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t index = p * kPerProducer + i;
        auto callback = [&fired, &done, index](JobResult&& r) {
          EXPECT_EQ(r.index, index);
          fired[index].fetch_add(1, std::memory_order_relaxed);
          done.fetch_add(1, std::memory_order_relaxed);
        };
        // Alternate blocking and non-blocking entry points; the
        // non-blocking one retries until accepted so every submission
        // lands exactly once.
        if (i % 2 == 0) {
          engine.submit(tiny_job(), callback, index);
        } else {
          JobSpec job = tiny_job();
          std::function<void(JobResult&&)> fn = callback;
          while (!engine.try_submit(std::move(job), std::move(fn), index))
            std::this_thread::yield();
        }
      }
    });
  for (std::thread& t : producers) t.join();
  while (done.load(std::memory_order_acquire) < kProducers * kPerProducer)
    std::this_thread::yield();
  for (std::size_t i = 0; i < fired.size(); ++i)
    ASSERT_EQ(fired[i].load(std::memory_order_relaxed), 1u)
        << "submission " << i << " fired the wrong number of callbacks";
  EXPECT_EQ(engine.stats().jobs_run, kProducers * kPerProducer);
  EXPECT_EQ(engine.stats().jobs_failed, 0u);
}

} // namespace
} // namespace bmh
