/// End-to-end integration tests across modules: the full pipelines the
/// paper's experiments run (generate -> scale -> match -> evaluate), the
/// suite instances, jump-start workflows, and I/O round trips feeding the
/// heuristics.

#include <gtest/gtest.h>

#include <sstream>

#include "bmh.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(Integration, FullPipelineOnSuiteInstances) {
  // Tiny-scale run of the Table 3 pipeline over a representative subset.
  for (const auto& name :
       {"atmosmodl_like", "torso1_like", "road_usa_like", "kkt_power_like"}) {
    const SuiteInstance inst = make_suite_instance(name, 0.01, 42);
    const vid_t rank = sprank(inst.graph);

    const Matching one = one_sided_match(inst.graph, 5, 1);
    testing::expect_valid(inst.graph, one, name);
    EXPECT_GE(matching_quality(one, rank), kOneSidedGuarantee - 0.03) << name;

    const Matching two = two_sided_match(inst.graph, 5, 1);
    testing::expect_valid(inst.graph, two, name);
    EXPECT_GE(matching_quality(two, rank), kTwoSidedGuarantee - 0.03) << name;
  }
}

TEST(Integration, JumpStartReducesAugmentationWork) {
  // The paper's motivating use: feed the heuristic matching to an exact
  // solver. The warm-started solver must do far fewer augmentations.
  const BipartiteGraph g = make_erdos_renyi(20000, 20000, 100000, 3);
  const Matching warm = two_sided_match(g, 5, 7);
  const vid_t already = warm.cardinality();
  const Matching exact = hopcroft_karp(g, &warm);
  const vid_t optimum = exact.cardinality();
  testing::expect_valid(g, exact, "jump-start");
  EXPECT_GE(optimum, already);
  // The heuristic must have done at least the conjectured share of the work.
  EXPECT_GE(static_cast<double>(already),
            (kTwoSidedGuarantee - 0.02) * static_cast<double>(optimum));
}

TEST(Integration, MatrixMarketRoundTripThroughHeuristics) {
  const BipartiteGraph g = make_planted_perfect(400, 3, 9);
  std::stringstream buffer;
  write_matrix_market(buffer, g);
  const BipartiteGraph loaded = read_matrix_market(buffer);
  ASSERT_TRUE(g.structurally_equal(loaded));
  const Matching m = two_sided_match(loaded, 5, 2);
  testing::expect_valid(loaded, m, "mtx roundtrip");
  EXPECT_GE(matching_quality(m, 400), kTwoSidedGuarantee - 0.02);
}

TEST(Integration, ScalingQualityChainOnAdversarial) {
  // Table 1, one cell, end to end: n=256, k=8, 10 iterations, min of 5.
  const BipartiteGraph g = make_ks_adversarial(256, 8);
  vid_t ts_worst = 256;
  for (std::uint64_t seed = 0; seed < 5; ++seed)
    ts_worst = std::min(ts_worst, two_sided_match(g, 10, seed).cardinality());
  EXPECT_GE(static_cast<double>(ts_worst) / 256.0, 0.96);
}

TEST(Integration, DmGuidedInterpretationOfScaling) {
  // §3.3 chain: DM-decompose, scale, and confirm the probability mass each
  // row assigns to coupling entries is negligible after enough iterations.
  const BipartiteGraph g = make_dm_structured(15, 25, 30, 28, 18, 2, 3);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  const ScalingResult s = scale_sinkhorn_knopp(g, {100, 0.0});
  double worst_coupling_mass = 0.0;
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    double coupling = 0.0, total = 0.0;
    for (const vid_t j : g.row_neighbors(i)) {
      const double e = s.entry(i, j);
      total += e;
      if (dm.row_part[static_cast<std::size_t>(i)] !=
          dm.col_part[static_cast<std::size_t>(j)])
        coupling += e;
    }
    if (total > 0.0) worst_coupling_mass = std::max(worst_coupling_mass, coupling / total);
  }
  EXPECT_LT(worst_coupling_mass, 0.1);
}

TEST(Integration, HeuristicLadderOrderingOnRandomInstances) {
  // Expected quality ordering on ER graphs: two_sided > one_sided, and
  // two_sided >= karp_sipser - small slack (KS is strong on sparse random
  // inputs; the adversarial family is where two_sided wins decisively).
  const BipartiteGraph g = make_erdos_renyi(10000, 10000, 50000, 11);
  const vid_t rank = sprank(g);
  const double q_one = matching_quality(one_sided_match(g, 5, 3), rank);
  const double q_two = matching_quality(two_sided_match(g, 5, 3), rank);
  EXPECT_GT(q_two, q_one);
  EXPECT_GE(q_one, kOneSidedGuarantee);
  EXPECT_GE(q_two, kTwoSidedGuarantee);
}

TEST(Integration, EndToEndOnEveryZooGraph) {
  for (const auto& g : testing::small_graph_zoo()) {
    const vid_t rank = sprank(g);
    for (const int iters : {0, 1, 5}) {
      const Matching one = one_sided_match(g, iters, 3);
      const Matching two = two_sided_match(g, iters, 3);
      testing::expect_valid(g, one, "zoo one");
      testing::expect_valid(g, two, "zoo two");
      EXPECT_LE(one.cardinality(), rank);
      EXPECT_LE(two.cardinality(), rank);
    }
  }
}

} // namespace
} // namespace bmh
