/// Tests for the exact solvers (Hopcroft-Karp, MC21): agreement with a
/// brute-force oracle on small random graphs, mutual agreement on larger
/// ones, warm starts, and structured instances with known sprank.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/mc21.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(HopcroftKarp, MatchesBruteForceOnSmallRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const vid_t rows = 2 + static_cast<vid_t>(seed % 7);
    const vid_t cols = 2 + static_cast<vid_t>((seed / 7) % 7);
    const BipartiteGraph g =
        make_erdos_renyi(rows, cols, static_cast<eid_t>(rows) * 2, seed);
    const Matching m = hopcroft_karp(g);
    testing::expect_valid(g, m, "hk");
    EXPECT_EQ(m.cardinality(), testing::brute_force_max_matching(g))
        << "seed " << seed << " dims " << rows << "x" << cols;
  }
}

TEST(Mc21, MatchesBruteForceOnSmallRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const vid_t rows = 2 + static_cast<vid_t>(seed % 6);
    const vid_t cols = 2 + static_cast<vid_t>((seed / 6) % 6);
    const BipartiteGraph g =
        make_erdos_renyi(rows, cols, static_cast<eid_t>(rows) * 2, seed + 1000);
    const Matching m = mc21(g);
    testing::expect_valid(g, m, "mc21");
    EXPECT_EQ(m.cardinality(), testing::brute_force_max_matching(g)) << "seed " << seed;
  }
}

TEST(ExactSolvers, AgreeOnMediumRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const BipartiteGraph g = make_erdos_renyi(800, 900, 4000, seed);
    EXPECT_EQ(hopcroft_karp(g).cardinality(), mc21(g).cardinality()) << seed;
  }
}

TEST(ExactSolvers, AgreeOnStructuredInstances) {
  const BipartiteGraph mesh = make_mesh(20, 20);
  EXPECT_EQ(hopcroft_karp(mesh).cardinality(), mc21(mesh).cardinality());
  const BipartiteGraph adv = make_ks_adversarial(128, 8);
  EXPECT_EQ(hopcroft_karp(adv).cardinality(), 128);
  EXPECT_EQ(mc21(adv).cardinality(), 128);
}

TEST(HopcroftKarp, KnownSprankOnDeficientFamilies) {
  // Road-like with drops: sprank is strictly below n but above 0.85n.
  const BipartiteGraph g = make_road_like(3000, 0.0, 0.1, 5);
  const vid_t rank = sprank(g);
  EXPECT_LT(rank, 3000);
  EXPECT_GT(rank, 2550);
}

TEST(HopcroftKarp, WarmStartPreservesOptimality) {
  const BipartiteGraph g = make_erdos_renyi(500, 500, 2500, 13);
  const vid_t cold = hopcroft_karp(g).cardinality();
  const Matching warm_init = match_random_vertices(g, 3);
  const Matching warm = hopcroft_karp(g, &warm_init);
  testing::expect_valid(g, warm, "warm hk");
  EXPECT_EQ(warm.cardinality(), cold);
}

TEST(Mc21, WarmStartPreservesOptimality) {
  const BipartiteGraph g = make_erdos_renyi(500, 500, 2500, 17);
  const vid_t cold = mc21(g).cardinality();
  const Matching warm_init = match_min_degree(g);
  const Matching warm = mc21(g, &warm_init);
  EXPECT_EQ(warm.cardinality(), cold);
}

TEST(ExactSolvers, RejectInvalidWarmStart) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  Matching bad(2, 2);
  bad.match(0, 1);  // not an edge
  EXPECT_THROW((void)hopcroft_karp(g, &bad), std::invalid_argument);
  EXPECT_THROW((void)mc21(g, &bad), std::invalid_argument);
}

TEST(ExactSolvers, PerfectOnPlantedFamilies) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const BipartiteGraph g = make_planted_perfect(1500, 2, seed);
    EXPECT_EQ(sprank(g), 1500);
  }
}

TEST(ExactSolvers, RectangularWideAndTall) {
  const BipartiteGraph wide = make_erdos_renyi(100, 300, 900, 3);
  EXPECT_EQ(hopcroft_karp(wide).cardinality(), mc21(wide).cardinality());
  const BipartiteGraph tall = make_erdos_renyi(300, 100, 900, 4);
  EXPECT_EQ(hopcroft_karp(tall).cardinality(), mc21(tall).cardinality());
}

TEST(ExactSolvers, ZooAgreesWithBruteForce) {
  for (const auto& g : testing::small_graph_zoo()) {
    const vid_t expected = testing::brute_force_max_matching(g);
    EXPECT_EQ(hopcroft_karp(g).cardinality(), expected);
    EXPECT_EQ(mc21(g).cardinality(), expected);
  }
}

TEST(HopcroftKarp, DeepPathRequiresLongAugmentations) {
  // A long alternating chain: row i connects to columns i and i+1; the
  // unique perfect matching needs augmenting paths of increasing length.
  const vid_t n = 20000;
  std::vector<std::vector<vid_t>> rows(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    rows[static_cast<std::size_t>(i)].push_back(i);
    if (i + 1 < n) rows[static_cast<std::size_t>(i)].push_back(i + 1);
  }
  const BipartiteGraph g = graph_from_rows(n, n, rows);
  EXPECT_EQ(sprank(g), n);  // also exercises the iterative (non-recursive) DFS
}

} // namespace
} // namespace bmh
