/// Tests for König certification: cover construction, duality, and
/// cross-validation of every exact solver against the certificate.

#include <gtest/gtest.h>

#include "analysis/koenig.hpp"
#include "core/two_sided.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/karp_sipser.hpp"
#include "matching/mc21.hpp"
#include "matching/push_relabel.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(Koenig, CoverOfMaximumMatchingHasMatchingSize) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const BipartiteGraph g = make_erdos_renyi(400, 450, 2000, seed);
    const Matching m = hopcroft_karp(g);
    const VertexCover c = koenig_cover(g, m);
    EXPECT_TRUE(is_vertex_cover(g, c)) << seed;
    EXPECT_EQ(c.size(), m.cardinality()) << seed;
  }
}

TEST(Koenig, DetectsNonMaximumMatchings) {
  // An empty matching on a non-empty graph is never maximum.
  const BipartiteGraph g = make_full(5);
  EXPECT_FALSE(is_maximum_matching(g, Matching(5, 5)));
  // A maximal-but-not-maximum matching: star clash graph where greedy can
  // pick the center edge suboptimally.
  const BipartiteGraph path = graph_from_rows(2, 2, {{0, 1}, {0}});
  Matching bad(2, 2);
  bad.match(0, 0);  // blocks row 1; maximum is 2 via (0,1),(1,0)
  EXPECT_TRUE(is_valid_matching(path, bad));
  EXPECT_FALSE(is_maximum_matching(path, bad));
}

TEST(Koenig, CertifiesAllExactSolvers) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const BipartiteGraph g = make_erdos_renyi(600, 600, 2500, seed + 40);
    EXPECT_TRUE(is_maximum_matching(g, hopcroft_karp(g))) << "hk " << seed;
    EXPECT_TRUE(is_maximum_matching(g, mc21(g))) << "mc21 " << seed;
    EXPECT_TRUE(is_maximum_matching(g, push_relabel(g))) << "pr " << seed;
  }
}

TEST(Koenig, HeuristicsAreUsuallyNotMaximum) {
  // Sanity check of the detector's discriminative power: the 1/2-greedy on
  // a structured instance should generally NOT be maximum.
  const BipartiteGraph g = make_ks_adversarial(256, 16);
  int non_max = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed)
    if (!is_maximum_matching(g, match_random_edges(g, seed))) ++non_max;
  EXPECT_GT(non_max, 0);
}

TEST(Koenig, CertifiesKarpSipserMTOnChoiceSubgraphs) {
  // An alternative (certificate-based) proof of the Lemma 1-3 exactness
  // property that does not rely on comparing against another solver.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const BipartiteGraph g = make_erdos_renyi(2000, 2000, 8000, seed);
    const ScalingResult s = scale_sinkhorn_knopp(g, {3, 0.0});
    const TwoSidedChoices ch = sample_two_sided_choices(g, s, seed + 3);
    const std::vector<vid_t> choice =
        unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
    const Matching m = karp_sipser_mt(g.num_rows(), g.num_cols(), choice);
    const BipartiteGraph sub =
        materialize_choice_graph(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
    EXPECT_TRUE(is_maximum_matching(sub, m)) << seed;
  }
}

TEST(Koenig, ZooCertificates) {
  for (const auto& g : testing::small_graph_zoo()) {
    const Matching m = hopcroft_karp(g);
    EXPECT_TRUE(is_maximum_matching(g, m));
    const VertexCover c = koenig_cover(g, m);
    EXPECT_EQ(c.size(), testing::brute_force_max_matching(g));
  }
}

TEST(Koenig, EmptyGraphTrivia) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{}, {}});
  const Matching m(2, 2);
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_EQ(koenig_cover(g, m).size(), 0);
}

TEST(Koenig, WeakDualityHolds) {
  // Any cover is at least any matching, even non-optimal pairs.
  const BipartiteGraph g = make_erdos_renyi(300, 300, 1200, 9);
  const Matching heur = karp_sipser(g, 3);
  const Matching best = hopcroft_karp(g);
  const VertexCover c = koenig_cover(g, best);
  EXPECT_GE(c.size(), heur.cardinality());
}

} // namespace
} // namespace bmh
