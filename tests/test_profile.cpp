/// Tests for the instrumented heuristic runs.

#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(Profile, OneSidedPhasesAreAccountedFor) {
  const BipartiteGraph g = make_planted_perfect(5000, 4, 3);
  const OneSidedProfile p = profile_one_sided(g, 5, 7);
  EXPECT_EQ(p.scaling_iterations, 5);
  EXPECT_GE(p.scaling_seconds, 0.0);
  EXPECT_GE(p.matching_seconds, 0.0);
  EXPECT_NEAR(p.total_seconds(), p.scaling_seconds + p.matching_seconds, 1e-12);
  testing::expect_valid(g, p.matching, "profiled one-sided");
}

TEST(Profile, TwoSidedPhasesAndStats) {
  const BipartiteGraph g = make_planted_perfect(5000, 4, 5);
  const TwoSidedProfile p = profile_two_sided(g, 5, 9);
  EXPECT_EQ(p.scaling_iterations, 5);
  EXPECT_GT(p.scaling_error, 0.0);
  testing::expect_valid(g, p.matching, "profiled two-sided");
  EXPECT_EQ(p.ksmt.phase1_matches + p.ksmt.phase2_matches, p.matching.cardinality());
}

TEST(Profile, ZeroIterationsSkipsScaling) {
  const BipartiteGraph g = make_erdos_renyi(2000, 2000, 8000, 1);
  const OneSidedProfile p = profile_one_sided(g, 0, 3);
  EXPECT_EQ(p.scaling_iterations, 0);
  testing::expect_valid(g, p.matching, "no-scaling profile");
}

TEST(Profile, MatchesUnprofiledCardinalityDistribution) {
  // The profiled run must produce the same matching cardinality as the
  // plain call with the same seed (it is the same pipeline).
  const BipartiteGraph g = make_planted_perfect(3000, 3, 11);
  const TwoSidedProfile p = profile_two_sided(g, 5, 13);
  const Matching direct = two_sided_match(g, 5, 13);
  EXPECT_EQ(p.matching.cardinality(), direct.cardinality());
}

} // namespace
} // namespace bmh
