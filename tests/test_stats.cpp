/// Unit tests for degree statistics.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace bmh {
namespace {

TEST(Stats, HandComputedExample) {
  // Degrees: row0 = 2, row1 = 0, row2 = 1.
  const BipartiteGraph g = graph_from_rows(3, 3, {{0, 1}, {}, {2}});
  const DegreeStats s = row_degree_stats(g);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 2);
  EXPECT_NEAR(s.mean, 1.0, 1e-12);
  EXPECT_NEAR(s.variance, 2.0 / 3.0, 1e-12);  // ((2-1)^2+(0-1)^2+(1-1)^2)/3
  EXPECT_EQ(s.num_zero, 1);
  EXPECT_EQ(s.num_degree_one, 1);
}

TEST(Stats, ColumnSideMirrorsTranspose) {
  const BipartiteGraph g = make_erdos_renyi(100, 80, 500, 3);
  const DegreeStats cols = col_degree_stats(g);
  const DegreeStats rows_of_t = row_degree_stats(g.transposed());
  EXPECT_EQ(cols.min, rows_of_t.min);
  EXPECT_EQ(cols.max, rows_of_t.max);
  EXPECT_NEAR(cols.mean, rows_of_t.mean, 1e-12);
  EXPECT_NEAR(cols.variance, rows_of_t.variance, 1e-9);
}

TEST(Stats, RegularGraphHasZeroVariance) {
  const BipartiteGraph g = make_row_regular(200, 3, 1);
  const DegreeStats s = row_degree_stats(g);
  EXPECT_EQ(s.min, 3);
  EXPECT_EQ(s.max, 3);
  EXPECT_NEAR(s.variance, 0.0, 1e-12);
}

TEST(Stats, AverageDegreeMatchesDefinition) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0, 1}, {0}});
  // 2 * 3 edges / 4 vertices = 1.5.
  EXPECT_NEAR(average_degree(g), 1.5, 1e-12);
}

TEST(Stats, FullMatrixDegrees) {
  const BipartiteGraph g = make_full(16);
  const DegreeStats s = row_degree_stats(g);
  EXPECT_EQ(s.min, 16);
  EXPECT_EQ(s.max, 16);
  EXPECT_EQ(s.num_zero, 0);
  EXPECT_EQ(s.num_degree_one, 0);
}

} // namespace
} // namespace bmh
