/// Tests for the quality accounting helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/quality.hpp"
#include "core/one_sided.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"

namespace bmh {
namespace {

TEST(Quality, RatioComputation) {
  Matching m(4, 4);
  m.match(0, 0);
  m.match(1, 1);
  EXPECT_DOUBLE_EQ(matching_quality(m, 4), 0.5);
  EXPECT_DOUBLE_EQ(matching_quality(m, 2), 1.0);
}

TEST(Quality, ZeroSprankIsPerfect) {
  const Matching m(3, 3);
  EXPECT_DOUBLE_EQ(matching_quality(m, 0), 1.0);
}

TEST(Quality, EvaluateMatchingEndToEnd) {
  const BipartiteGraph g = make_planted_perfect(200, 2, 1);
  const Matching m = match_min_degree(g);
  const QualityReport r = evaluate_matching(g, m);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.sprank, 200);
  EXPECT_EQ(r.cardinality, m.cardinality());
  EXPECT_DOUBLE_EQ(r.quality, static_cast<double>(r.cardinality) / 200.0);
  EXPECT_GE(r.quality, 0.5);
}

TEST(Quality, FlagsInvalidMatching) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  Matching bad(2, 2);
  bad.match(0, 1);  // not an edge
  const QualityReport r = evaluate_matching(g, bad);
  EXPECT_FALSE(r.valid);
}

TEST(Quality, GuaranteeConstantsAreConsistent) {
  // 1 - 1/e and 2(1 - rho) with rho e^rho = 1.
  EXPECT_NEAR(kOneSidedGuarantee, 1.0 - std::exp(-1.0), 1e-15);
  const double rho = 1.0 - kTwoSidedGuarantee / 2.0;
  EXPECT_NEAR(rho * std::exp(rho), 1.0, 1e-12);
}

} // namespace
} // namespace bmh
