/// Tests for the cheap-matching baselines: validity, maximality, the 1/2
/// worst-case bound, determinism in the seed.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

using GreedyFn = Matching (*)(const BipartiteGraph&, std::uint64_t);

class GreedyHeuristicTest : public ::testing::TestWithParam<GreedyFn> {};

TEST_P(GreedyHeuristicTest, ValidOnZoo) {
  const GreedyFn fn = GetParam();
  for (const auto& g : testing::small_graph_zoo()) {
    const Matching m = fn(g, 7);
    testing::expect_valid(g, m, "greedy on zoo");
  }
}

TEST_P(GreedyHeuristicTest, MaximalOnZoo) {
  const GreedyFn fn = GetParam();
  for (const auto& g : testing::small_graph_zoo()) {
    EXPECT_TRUE(is_maximal_matching(g, fn(g, 3)));
  }
}

TEST_P(GreedyHeuristicTest, AtLeastHalfOfOptimal) {
  const GreedyFn fn = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const BipartiteGraph g = make_erdos_renyi(300, 300, 1200, seed);
    const vid_t opt = sprank(g);
    const Matching m = fn(g, seed * 11 + 1);
    EXPECT_GE(2 * m.cardinality(), opt) << "seed " << seed;
  }
}

TEST_P(GreedyHeuristicTest, DeterministicInSeed) {
  const GreedyFn fn = GetParam();
  const BipartiteGraph g = make_erdos_renyi(200, 200, 800, 3);
  const Matching a = fn(g, 99);
  const Matching b = fn(g, 99);
  EXPECT_EQ(a.row_match, b.row_match);
}

INSTANTIATE_TEST_SUITE_P(Variants, GreedyHeuristicTest,
                         ::testing::Values(&match_random_edges, &match_random_vertices));

TEST(MinDegreeGreedy, ValidMaximalAndDeterministic) {
  for (const auto& g : testing::small_graph_zoo()) {
    const Matching m = match_min_degree(g);
    testing::expect_valid(g, m, "mindegree");
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
  const BipartiteGraph g = make_erdos_renyi(200, 200, 900, 5);
  EXPECT_EQ(match_min_degree(g).row_match, match_min_degree(g).row_match);
}

TEST(MinDegreeGreedy, PerfectOnPermutation) {
  const BipartiteGraph g = graph_from_rows(4, 4, {{2}, {0}, {3}, {1}});
  EXPECT_EQ(match_min_degree(g).cardinality(), 4);
}

TEST(Greedy, HandlesEmptyGraph) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{}, {}, {}});
  EXPECT_EQ(match_random_edges(g, 1).cardinality(), 0);
  EXPECT_EQ(match_random_vertices(g, 1).cardinality(), 0);
  EXPECT_EQ(match_min_degree(g).cardinality(), 0);
}

TEST(Greedy, PerfectOnCompleteGraph) {
  const BipartiteGraph g = make_full(20);
  EXPECT_EQ(match_random_edges(g, 2).cardinality(), 20);
  EXPECT_EQ(match_random_vertices(g, 2).cardinality(), 20);
  EXPECT_EQ(match_min_degree(g).cardinality(), 20);
}

} // namespace
} // namespace bmh
