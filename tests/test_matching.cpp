/// Tests for the Matching value type and validity machinery.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "matching/matching.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(Matching, FreshMatchingIsEmptyAndValid) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{0}, {1}, {2}});
  const Matching m(3, 3);
  EXPECT_EQ(m.cardinality(), 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Matching, MatchUpdatesBothViews) {
  Matching m(2, 2);
  m.match(0, 1);
  EXPECT_TRUE(m.row_matched(0));
  EXPECT_TRUE(m.col_matched(1));
  EXPECT_FALSE(m.row_matched(1));
  EXPECT_EQ(m.cardinality(), 1);
}

TEST(Matching, ValidityRejectsInconsistentViews) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0, 1}, {0, 1}});
  Matching m(2, 2);
  m.row_match[0] = 1;  // col_match[1] not updated
  const std::string why = describe_matching_violation(g, m);
  EXPECT_FALSE(why.empty());
  EXPECT_NE(why.find("col_match"), std::string::npos);
}

TEST(Matching, ValidityRejectsNonEdgePairs) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  Matching m(2, 2);
  m.match(0, 1);  // (0,1) is not an edge
  EXPECT_FALSE(is_valid_matching(g, m));
  EXPECT_NE(describe_matching_violation(g, m).find("not an edge"), std::string::npos);
}

TEST(Matching, ValidityRejectsSizeMismatch) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  const Matching m(3, 2);
  EXPECT_FALSE(is_valid_matching(g, m));
}

TEST(Matching, ValidityRejectsOutOfRangePartner) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  Matching m(2, 2);
  m.row_match[0] = 7;
  EXPECT_FALSE(is_valid_matching(g, m));
}

TEST(MatchingFromColView, ReconstructsRowView) {
  // Columns 0 and 2 claim rows 1 and 0 respectively.
  const Matching m = matching_from_col_view(2, {1, kNil, 0});
  EXPECT_EQ(m.row_match[0], 2);
  EXPECT_EQ(m.row_match[1], 0);
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(MatchingFromColView, SurvivingWriteWins) {
  // If two columns claimed the same row the input col view itself would be
  // inconsistent; the reconstruction keeps the *last* column's claim in the
  // row view. OneSidedMatch never produces that case (each row writes at
  // most one column), which this test documents by construction.
  const Matching m = matching_from_col_view(1, {0, 0});
  EXPECT_EQ(m.row_match[0], 1);
}

TEST(MatchingFromColView, RejectsOutOfRangeRowIds) {
  EXPECT_THROW((void)matching_from_col_view(2, {2}), std::out_of_range);
  EXPECT_THROW((void)matching_from_col_view(2, {kNil, -7}), std::out_of_range);
  EXPECT_NO_THROW((void)matching_from_col_view(2, {kNil, 1}));
}

TEST(Maximality, DetectsAugmentableEdge) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0, 1}, {1}});
  Matching empty(2, 2);
  EXPECT_FALSE(is_maximal_matching(g, empty));
  Matching m(2, 2);
  m.match(0, 0);
  m.match(1, 1);
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(Maximality, EmptyGraphIsTriviallyMaximal) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{}, {}});
  EXPECT_TRUE(is_maximal_matching(g, Matching(2, 2)));
}

} // namespace
} // namespace bmh
