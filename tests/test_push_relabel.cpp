/// Tests for the push-relabel exact matcher (paper ref. [21]): agreement
/// with brute force and the other exact solvers, warm starts, termination
/// on structured and deficient inputs.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/mc21.hpp"
#include "matching/push_relabel.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(PushRelabel, MatchesBruteForceOnSmallRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const vid_t rows = 2 + static_cast<vid_t>(seed % 7);
    const vid_t cols = 2 + static_cast<vid_t>((seed / 7) % 7);
    const BipartiteGraph g =
        make_erdos_renyi(rows, cols, static_cast<eid_t>(rows) * 2, seed + 500);
    const Matching m = push_relabel(g);
    testing::expect_valid(g, m, "push_relabel");
    EXPECT_EQ(m.cardinality(), testing::brute_force_max_matching(g)) << "seed " << seed;
  }
}

TEST(PushRelabel, AgreesWithHopcroftKarpOnMediumGraphs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const BipartiteGraph g = make_erdos_renyi(800, 850, 4000, seed);
    EXPECT_EQ(push_relabel(g).cardinality(), hopcroft_karp(g).cardinality()) << seed;
  }
}

TEST(PushRelabel, ZooAgreesWithBruteForce) {
  for (const auto& g : testing::small_graph_zoo()) {
    const Matching m = push_relabel(g);
    testing::expect_valid(g, m, "zoo");
    EXPECT_EQ(m.cardinality(), testing::brute_force_max_matching(g));
  }
}

TEST(PushRelabel, StructuredInstances) {
  EXPECT_EQ(push_relabel(make_ks_adversarial(128, 8)).cardinality(), 128);
  EXPECT_EQ(push_relabel(make_mesh(15, 15)).cardinality(), 225);
  EXPECT_EQ(push_relabel(make_cycle(51)).cardinality(), 51);
  EXPECT_EQ(push_relabel(make_full(32)).cardinality(), 32);
}

TEST(PushRelabel, DeficientAndRectangular) {
  const BipartiteGraph wide = make_erdos_renyi(150, 400, 800, 3);
  EXPECT_EQ(push_relabel(wide).cardinality(), hopcroft_karp(wide).cardinality());
  const BipartiteGraph tall = make_erdos_renyi(400, 150, 800, 4);
  EXPECT_EQ(push_relabel(tall).cardinality(), hopcroft_karp(tall).cardinality());
  const BipartiteGraph sparse = make_erdos_renyi(1000, 1000, 1500, 5);
  EXPECT_EQ(push_relabel(sparse).cardinality(), mc21(sparse).cardinality());
}

TEST(PushRelabel, WarmStartPreservesOptimality) {
  const BipartiteGraph g = make_erdos_renyi(600, 600, 3000, 9);
  const Matching init = match_min_degree(g);
  const Matching warm = push_relabel(g, &init);
  testing::expect_valid(g, warm, "warm");
  EXPECT_EQ(warm.cardinality(), hopcroft_karp(g).cardinality());
}

TEST(PushRelabel, RejectsInvalidWarmStart) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  Matching bad(2, 2);
  bad.match(0, 1);
  EXPECT_THROW((void)push_relabel(g, &bad), std::invalid_argument);
}

TEST(PushRelabel, LongAugmentingChains) {
  // Same pathological chain as the HK test: unique perfect matching found
  // only through long rotations; exercises the label dynamics.
  const vid_t n = 4000;
  std::vector<std::vector<vid_t>> rows(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    rows[static_cast<std::size_t>(i)].push_back(i);
    if (i + 1 < n) rows[static_cast<std::size_t>(i)].push_back(i + 1);
  }
  const BipartiteGraph g = graph_from_rows(n, n, rows);
  EXPECT_EQ(push_relabel(g).cardinality(), n);
}

TEST(PushRelabel, EmptyAndIsolated) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{}, {1}, {}});
  const Matching m = push_relabel(g);
  testing::expect_valid(g, m, "isolated");
  EXPECT_EQ(m.cardinality(), 1);
}

} // namespace
} // namespace bmh
