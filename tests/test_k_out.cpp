/// Tests for the k-out extension: subgraph structure, monotonicity of
/// quality in k, and the Walkup 2-out phenomenon.

#include <gtest/gtest.h>

#include "core/k_out.hpp"
#include "core/two_sided.hpp"
#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(KOut, PicksAreDistinctNeighbors) {
  const BipartiteGraph g = make_erdos_renyi(300, 300, 2400, 3);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const int k = 3;
  const std::vector<vid_t> picks = sample_row_choices_k(g, s.dc, k, 7);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    for (int a = 0; a < k; ++a) {
      const vid_t ja = picks[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(a)];
      if (ja == kNil) continue;
      EXPECT_TRUE(g.has_edge(i, ja));
      for (int b = a + 1; b < k; ++b)
        EXPECT_NE(ja, picks[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(b)]);
    }
  }
}

TEST(KOut, SmallNeighborhoodsTakenWhole) {
  const BipartiteGraph g = graph_from_rows(2, 4, {{0, 1}, {0, 1, 2, 3}});
  const std::vector<double> dc(4, 1.0);
  const std::vector<vid_t> picks = sample_row_choices_k(g, dc, 3, 1);
  // Row 0 has only 2 neighbours: both taken, third slot kNil.
  EXPECT_NE(picks[0], kNil);
  EXPECT_NE(picks[1], kNil);
  EXPECT_EQ(picks[2], kNil);
}

TEST(KOut, SubgraphIsSubgraphOfInput) {
  const BipartiteGraph g = make_erdos_renyi(400, 400, 3000, 5);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const BipartiteGraph sub = k_out_subgraph(g, s, 2, 9);
  EXPECT_EQ(sub.num_rows(), g.num_rows());
  for (vid_t i = 0; i < sub.num_rows(); ++i)
    for (const vid_t j : sub.row_neighbors(i)) EXPECT_TRUE(g.has_edge(i, j));
  EXPECT_LE(sub.num_edges(), 2LL * 2 * (g.num_rows() + g.num_cols()));
}

TEST(KOut, MatchingIsValidForOriginalGraph) {
  const BipartiteGraph g = make_erdos_renyi(1000, 1000, 6000, 7);
  for (const int k : {1, 2, 3}) {
    const Matching m = k_out_match(g, 5, k, 11);
    testing::expect_valid(g, m, "k_out");
  }
}

class KOutQualityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KOutQualityTest, QualityIncreasesWithK) {
  const std::uint64_t seed = GetParam();
  const vid_t n = 2000;
  const BipartiteGraph g = make_planted_perfect(n, 4, seed);
  const double q1 =
      static_cast<double>(k_out_match(g, 5, 1, seed).cardinality()) / n;
  const double q2 =
      static_cast<double>(k_out_match(g, 5, 2, seed).cardinality()) / n;
  const double q3 =
      static_cast<double>(k_out_match(g, 5, 3, seed).cardinality()) / n;
  EXPECT_GE(q2, q1 - 1e-9);
  EXPECT_GE(q3, q2 - 1e-9);
  // Walkup: 2-out random bipartite graphs have perfect matchings a.a.s.
  EXPECT_GE(q2, 0.99);
  EXPECT_GE(q3, 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KOutQualityTest, ::testing::Range<std::uint64_t>(0, 6));

TEST(KOut, OneOutMatchesTwoSidedGuarantee) {
  // k = 1 is TwoSidedMatch modulo the subgraph solver: both are maximum
  // matchings of (different samples of) 1-out ∪ 1-in subgraphs, so the
  // quality band is the same ~0.866.
  const vid_t n = 4000;
  const BipartiteGraph g = make_full(n);
  const double q =
      static_cast<double>(k_out_match(g, 1, 1, 3).cardinality()) / n;
  EXPECT_NEAR(q, kTwoSidedGuarantee, 0.02);
}

TEST(KOut, RejectsBadK) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  const ScalingResult s = identity_scaling(g);
  EXPECT_THROW((void)k_out_subgraph(g, s, 0, 1), std::invalid_argument);
}

TEST(KOut, WorksOnDeficientGraphs) {
  const BipartiteGraph g = make_erdos_renyi(3000, 3000, 9000, 13);
  const vid_t rank = sprank(g);
  const Matching m = k_out_match(g, 5, 2, 17);
  testing::expect_valid(g, m, "deficient k-out");
  EXPECT_GE(static_cast<double>(m.cardinality()), 0.95 * static_cast<double>(rank));
}

} // namespace
} // namespace bmh
