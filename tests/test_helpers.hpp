#pragma once
/// \file test_helpers.hpp
/// \brief Shared fixtures and helpers for the bmh test suite.

#include <gtest/gtest.h>

#include <vector>

#include "bmh.hpp"

namespace bmh::testing {

/// Asserts validity with a readable failure message.
inline void expect_valid(const BipartiteGraph& g, const Matching& m,
                         const char* context) {
  const std::string violation = describe_matching_violation(g, m);
  EXPECT_TRUE(violation.empty()) << context << ": " << violation;
}

/// Exhaustive maximum matching by recursion over rows — the independent
/// oracle used to certify Hopcroft–Karp and MC21 on small instances.
inline vid_t brute_force_max_matching(const BipartiteGraph& g) {
  std::vector<bool> col_used(static_cast<std::size_t>(g.num_cols()), false);
  // Recursive lambda over rows: either skip row i or match it to a free
  // neighbour; returns the best cardinality.
  auto rec = [&](auto&& self, vid_t i) -> vid_t {
    if (i == g.num_rows()) return 0;
    vid_t best = self(self, i + 1);  // leave row i unmatched
    for (const vid_t j : g.row_neighbors(i)) {
      if (col_used[static_cast<std::size_t>(j)]) continue;
      col_used[static_cast<std::size_t>(j)] = true;
      best = std::max(best, static_cast<vid_t>(1 + self(self, i + 1)));
      col_used[static_cast<std::size_t>(j)] = false;
    }
    return best;
  };
  return rec(rec, 0);
}

/// A small deterministic zoo of graphs exercising edge cases: empty rows,
/// empty columns, rectangular shapes, paths, cycles, cliques.
inline std::vector<BipartiteGraph> small_graph_zoo() {
  std::vector<BipartiteGraph> zoo;
  zoo.push_back(graph_from_rows(1, 1, {{0}}));                         // single edge
  zoo.push_back(graph_from_rows(2, 2, {{0, 1}, {0, 1}}));              // 2x2 full
  zoo.push_back(graph_from_rows(3, 3, {{0}, {0, 1}, {1, 2}}));         // path
  zoo.push_back(graph_from_rows(3, 3, {{0, 1}, {1, 2}, {2, 0}}));      // 6-cycle
  zoo.push_back(graph_from_rows(3, 3, {{}, {0, 1, 2}, {1}}));          // empty row
  zoo.push_back(graph_from_rows(3, 4, {{0, 3}, {1}, {1, 2}}));         // rectangular
  zoo.push_back(graph_from_rows(4, 3, {{0}, {0}, {1, 2}, {2}}));       // tall
  zoo.push_back(graph_from_rows(4, 4, {{0, 1, 2, 3}, {0}, {0}, {0}})); // star clash
  zoo.push_back(make_full(4));
  zoo.push_back(make_cycle(5));
  return zoo;
}

} // namespace bmh::testing
