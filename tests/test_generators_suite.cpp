/// Tests for the 12-instance UFL stand-in suite used by Table 3 and
/// Figures 3-5: names, determinism, structural class properties.

#include <gtest/gtest.h>

#include <string>

#include "graph/generators_suite.hpp"
#include "graph/stats.hpp"
#include "matching/hopcroft_karp.hpp"

namespace bmh {
namespace {

constexpr double kTinyScale = 0.02;  // keep unit tests quick

TEST(Suite, HasTwelveCanonicalNames) {
  const auto names = suite_names();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names.front(), "atmosmodl_like");
  EXPECT_EQ(names.back(), "venturiLevel3_like");
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW((void)make_suite_instance("nope", 1.0, 1), std::invalid_argument);
}

TEST(Suite, EveryInstanceBuildsAtTinyScale) {
  for (const auto& name : suite_names()) {
    const SuiteInstance inst = make_suite_instance(name, kTinyScale, 42);
    EXPECT_EQ(inst.name, name);
    EXPECT_GT(inst.graph.num_rows(), 0) << name;
    EXPECT_GT(inst.graph.num_edges(), 0) << name;
    EXPECT_TRUE(inst.graph.square()) << name;
  }
}

TEST(Suite, GenerationIsDeterministic) {
  const SuiteInstance a = make_suite_instance("cage15_like", kTinyScale, 42);
  const SuiteInstance b = make_suite_instance("cage15_like", kTinyScale, 42);
  EXPECT_TRUE(a.graph.structurally_equal(b.graph));
}

TEST(Suite, RoadInstancesAreSprankDeficient) {
  // The paper's europe_osm has sprank/n = 0.99 and road_usa 0.95; the
  // stand-ins must reproduce that deficiency class.
  const SuiteInstance europe = make_suite_instance("europe_osm_like", kTinyScale, 42);
  const double eu_ratio = static_cast<double>(sprank(europe.graph)) /
                          static_cast<double>(europe.graph.num_rows());
  EXPECT_LT(eu_ratio, 1.0);
  EXPECT_GT(eu_ratio, 0.95);

  const SuiteInstance usa = make_suite_instance("road_usa_like", kTinyScale, 42);
  const double usa_ratio = static_cast<double>(sprank(usa.graph)) /
                           static_cast<double>(usa.graph.num_rows());
  EXPECT_LT(usa_ratio, 0.99);
  EXPECT_GT(usa_ratio, 0.90);
}

TEST(Suite, PowerLawInstancesHaveHighestDegreeVariance) {
  // The paper singles out torso1/audikw_1 for extreme per-row nonzero
  // variance (load imbalance); the stand-ins preserve that ordering.
  double torso_var = 0.0, mesh_var = 0.0;
  {
    const SuiteInstance t = make_suite_instance("torso1_like", kTinyScale, 42);
    torso_var = row_degree_stats(t.graph).variance;
  }
  {
    const SuiteInstance m = make_suite_instance("atmosmodl_like", kTinyScale, 42);
    mesh_var = row_degree_stats(m.graph).variance;
  }
  EXPECT_GT(torso_var, 100.0 * std::max(mesh_var, 1.0));
}

TEST(Suite, MeshInstancesHaveLowDegreeSpread) {
  const SuiteInstance m = make_suite_instance("venturiLevel3_like", kTinyScale, 42);
  const DegreeStats s = row_degree_stats(m.graph);
  EXPECT_LE(s.max, 5);
  EXPECT_GE(s.min, 3);
}

TEST(Suite, ScaleGrowsInstances) {
  const SuiteInstance small = make_suite_instance("Hamrle3_like", 0.02, 42);
  const SuiteInstance large = make_suite_instance("Hamrle3_like", 0.08, 42);
  EXPECT_GT(large.graph.num_rows(), 2 * small.graph.num_rows());
}

TEST(Suite, MakeSuiteReturnsAllInstancesInOrder) {
  const auto suite = make_suite(kTinyScale, 42);
  ASSERT_EQ(suite.size(), 12u);
  const auto names = suite_names();
  for (std::size_t i = 0; i < suite.size(); ++i) EXPECT_EQ(suite[i].name, names[i]);
}

} // namespace
} // namespace bmh
