/// \file test_obs.cpp
/// \brief Tests for the observability subsystem (src/obs/): histogram
/// bucket geometry and quantile estimation against known distributions,
/// seqlock snapshot consistency under a concurrent writer (the sanitizer CI
/// job runs this under ASan+UBSan), trace span nesting and ring-buffer
/// wraparound, exporter golden output, and the engine integration — worker
/// domain totals vs Engine::stats(), cache counters vs GraphCache::Stats.
///
/// Everything value-bearing that depends on live recording is gated on
/// obs::kEnabled so the suite passes identically under BMH_OBS_DISABLED
/// (where histograms and spans compile out but counters keep counting).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "test_helpers.hpp"

namespace bmh {
namespace {

using obs::HistogramData;
using obs::kHistBuckets;

// ------------------------------------------------------ bucket geometry ---

TEST(ObsHistogram, BucketBoundaries) {
  // Underflow bucket: everything below 2^kHistMinShift ns.
  EXPECT_EQ(obs::histogram_bucket_index(0), 0);
  EXPECT_EQ(obs::histogram_bucket_index(127), 0);
  EXPECT_EQ(obs::histogram_bucket_index(128), 1);
  // Overflow bucket: everything at or past 2^kHistMaxShift ns (~68.7 s).
  EXPECT_EQ(obs::histogram_bucket_index(std::uint64_t{1} << obs::kHistMaxShift),
            kHistBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket_index(~std::uint64_t{0}), kHistBuckets - 1);

  // Every interior bucket is the half-open interval [lower, upper): its
  // bounds are exact integers, and the index function maps lower and
  // upper-1 back to the bucket, upper to the next one.
  for (int b = 1; b < kHistBuckets - 1; ++b) {
    const auto lower = static_cast<std::uint64_t>(obs::histogram_bucket_lower_ns(b));
    const auto upper = static_cast<std::uint64_t>(obs::histogram_bucket_upper_ns(b));
    ASSERT_LT(lower, upper);
    EXPECT_EQ(obs::histogram_bucket_index(lower), b) << "lower of bucket " << b;
    EXPECT_EQ(obs::histogram_bucket_index(upper - 1), b) << "upper-1 of bucket " << b;
    EXPECT_EQ(obs::histogram_bucket_index(upper), b + 1) << "upper of bucket " << b;
  }

  // Log-scale resolution: each interior bucket is at most 1/8 of its octave
  // wide, so the worst-case relative quantization error is ~12.5%.
  for (int b = 2; b < kHistBuckets - 1; ++b) {
    const double lower = obs::histogram_bucket_lower_ns(b);
    const double upper = obs::histogram_bucket_upper_ns(b);
    EXPECT_LE((upper - lower) / lower, 0.126) << "bucket " << b;
  }
}

TEST(ObsHistogram, QuantilesOfKnownDistributions) {
  // Uniform over [100 µs, 1 ms]: quantile q sits at 100µs + q*900µs. The
  // bucketed estimate must land within the ~12.5% bucket resolution.
  HistogramData uniform;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t ns = 100'000 + static_cast<std::uint64_t>(i) * 90;
    uniform.buckets[static_cast<std::size_t>(obs::histogram_bucket_index(ns))]++;
    uniform.count++;
    uniform.sum_ns += ns;
  }
  EXPECT_NEAR(uniform.p50_ns(), 550'000.0, 550'000.0 * 0.15);
  EXPECT_NEAR(uniform.p90_ns(), 910'000.0, 910'000.0 * 0.15);
  EXPECT_NEAR(uniform.p99_ns(), 991'000.0, 991'000.0 * 0.15);
  EXPECT_NEAR(uniform.mean_ns(), 550'000.0, 550'000.0 * 0.01);  // sum is exact

  // A point mass: every quantile reports the containing bucket's range.
  HistogramData point;
  const std::uint64_t value = 1'000'000;
  const int bucket = obs::histogram_bucket_index(value);
  point.buckets[static_cast<std::size_t>(bucket)] = 100;
  point.count = 100;
  point.sum_ns = 100 * value;
  for (const double q : {0.5, 0.9, 0.99}) {
    const double estimate = point.quantile_ns(q);
    EXPECT_GE(estimate, obs::histogram_bucket_lower_ns(bucket));
    EXPECT_LE(estimate, obs::histogram_bucket_upper_ns(bucket));
    (void)q;
  }

  // Empty histogram: quantiles are 0, not NaN.
  EXPECT_EQ(HistogramData{}.p50_ns(), 0.0);
  EXPECT_EQ(HistogramData{}.mean_ns(), 0.0);

  // Overflow bucket clamps to its lower bound instead of interpolating
  // toward infinity.
  HistogramData over;
  over.buckets[static_cast<std::size_t>(kHistBuckets - 1)] = 10;
  over.count = 10;
  EXPECT_EQ(over.p99_ns(), obs::histogram_bucket_lower_ns(kHistBuckets - 1));
}

TEST(ObsHistogram, RecordAndMerge) {
  obs::Histogram h;
  h.record(1000);
  h.record_seconds(0.001);
  const HistogramData a = h.data();
  HistogramData b = a;
  b.merge(a);
  if (obs::kEnabled) {
    EXPECT_EQ(a.count, 2u);
    EXPECT_EQ(a.sum_ns, 1'001'000u);
    EXPECT_EQ(b.count, 4u);
    EXPECT_EQ(b.sum_ns, 2'002'000u);
  } else {
    EXPECT_EQ(a.count, 0u);  // histograms compile out under BMH_OBS_DISABLED
  }
}

// ------------------------------------------------- domains and snapshots ---

TEST(ObsDomain, CountersGaugesFindOrCreate) {
  obs::MetricDomain domain("test");
  obs::Counter& c = domain.counter("events");
  c.inc();
  c.inc(4);
  // Counters stay live even when the latency layer is disabled: they back
  // the Stats views.
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&domain.counter("events"), &c);  // find, not create

  obs::Gauge& g = domain.gauge("level");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);

  const obs::DomainSnapshot snap = domain.snapshot();
  EXPECT_EQ(snap.counter_or("events"), 5u);
  EXPECT_EQ(snap.gauge_or("level"), 7);
  EXPECT_EQ(snap.counter_or("absent", 42), 42u);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(ObsDomain, SeqlockSnapshotNeverTearsAPublishBurst) {
  // A single-writer domain increments two counters inside every
  // PublishGuard burst; any snapshot must observe them equal. (Without the
  // seqlock a reader could land between the two increments.)
  obs::MetricDomain domain("worker", 0);
  obs::Counter& a = domain.counter("a");
  obs::Counter& b = domain.counter("b");

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 200'000 && !stop.load(std::memory_order_relaxed); ++i) {
      obs::PublishGuard guard(domain);
      a.inc();
      b.inc();
    }
    stop.store(true, std::memory_order_relaxed);
  });

  std::uint64_t last = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const obs::DomainSnapshot snap = domain.snapshot();
    const std::uint64_t va = snap.counter_or("a");
    const std::uint64_t vb = snap.counter_or("b");
    if (obs::kEnabled) EXPECT_EQ(va, vb);  // guard is a no-op when disabled
    EXPECT_GE(va, last);  // monotone in any mode
    last = va;
  }
  writer.join();
  const obs::DomainSnapshot final_snap = domain.snapshot();
  EXPECT_EQ(final_snap.counter_or("a"), 200'000u);
  EXPECT_EQ(final_snap.counter_or("b"), 200'000u);
}

TEST(ObsRegistry, AggregatesAcrossInstances) {
  obs::Registry registry;
  obs::MetricDomain& w0 = registry.create_domain("worker", 0);
  obs::MetricDomain& w1 = registry.create_domain("worker", 1);
  w0.counter("jobs").inc(3);
  w1.counter("jobs").inc(4);
  obs::MetricDomain external("cache");
  external.counter("hits").inc(9);
  registry.attach(&external);

  const obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.domains.size(), 3u);
  EXPECT_EQ(snap.counter_total("worker", "jobs"), 7u);
  EXPECT_EQ(snap.counter_total("cache", "hits"), 9u);

  const obs::Snapshot agg = snap.aggregated();
  ASSERT_EQ(agg.domains.size(), 2u);  // workers merged into one
  EXPECT_EQ(agg.domain("worker")->counter_or("jobs"), 7u);
  EXPECT_EQ(agg.domain("worker")->instance, -1);
}

// ------------------------------------------------------------- tracing ---

TEST(ObsTrace, SpanNestingDepths) {
  obs::TraceJournal journal(16);
  obs::bind_thread_journal(&journal);
  {
    BMH_SPAN("outer");
    {
      BMH_SPAN("inner");
    }
  }
  obs::bind_thread_journal(nullptr);

  const std::vector<obs::TraceEvent> events = journal.events();
  if (!obs::kEnabled) {
    EXPECT_TRUE(events.empty());
    return;
  }
  // Spans record on scope exit: inner first, then outer, depths nested.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST(ObsTrace, RingBufferWrapsKeepingNewest) {
  obs::TraceJournal journal(8);  // power of two already
  EXPECT_EQ(journal.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) journal.record("event", i * 10, 5, 1);

  if (!obs::kEnabled) {
    EXPECT_EQ(journal.recorded(), 0u);
    return;
  }
  EXPECT_EQ(journal.recorded(), 20u);
  const std::vector<obs::TraceEvent> events = journal.events();
  ASSERT_EQ(events.size(), 8u);  // oldest 12 wrapped away
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, 13 + i);  // ids are 1-based recording order
    EXPECT_EQ(events[i].start_ns, (12 + i) * 10);
  }
}

TEST(ObsTrace, UnboundThreadRecordsNothing) {
  // No journal bound: spans are safe no-ops (library users calling kernels
  // directly never pay more than one thread-local load).
  BMH_SPAN("orphan");
  obs::record_phase("orphan_phase", 0, 1);
  SUCCEED();
}

// ----------------------------------------------------------- exporters ---

/// A hand-built snapshot (independent of live recording, so these golden
/// tests hold under BMH_OBS_DISABLED too).
obs::Snapshot golden_snapshot() {
  obs::Snapshot snap;
  obs::DomainSnapshot d;
  d.name = "demo";
  d.instance = 0;
  d.counters.emplace_back("events", 3);
  d.gauges.emplace_back("level", -2);
  HistogramData h;
  const int bucket = obs::histogram_bucket_index(1'000'000);  // 1 ms
  h.buckets[static_cast<std::size_t>(bucket)] = 2;
  h.count = 2;
  h.sum_ns = 2'000'000;
  d.histograms.emplace_back("latency", h);
  snap.domains.push_back(std::move(d));
  return snap;
}

TEST(ObsExport, PrometheusGolden) {
  const std::string text = obs::prometheus_text(golden_snapshot());
  const double upper =
      obs::histogram_bucket_upper_ns(obs::histogram_bucket_index(1'000'000)) / 1e9;
  std::string expected;
  expected += "# TYPE bmh_demo_events_total counter\n";
  expected += "bmh_demo_events_total 3\n";
  expected += "# TYPE bmh_demo_level gauge\n";
  expected += "bmh_demo_level -2\n";
  expected += "# TYPE bmh_demo_latency_seconds histogram\n";
  expected += "bmh_demo_latency_seconds_bucket{le=\"0.001048576\"} 2\n";
  expected += "bmh_demo_latency_seconds_bucket{le=\"+Inf\"} 2\n";
  expected += "bmh_demo_latency_seconds_sum 0.002\n";
  expected += "bmh_demo_latency_seconds_count 2\n";
  ASSERT_NEAR(upper, 0.001048576, 1e-12);  // pin the bucket the golden assumes
  EXPECT_EQ(text, expected);
}

TEST(ObsExport, JsonLinesGoldenAndParseable) {
  const std::string text = obs::json_lines_text(golden_snapshot(), 1234);
  std::string expected;
  expected +=
      "{\"ts_ms\":1234,\"domain\":\"demo\",\"metric\":\"events\","
      "\"type\":\"counter\",\"value\":3}\n";
  expected +=
      "{\"ts_ms\":1234,\"domain\":\"demo\",\"metric\":\"level\","
      "\"type\":\"gauge\",\"value\":-2}\n";
  EXPECT_EQ(text.substr(0, expected.size()), expected);
  // The histogram line carries count/sum and the quantile estimates.
  EXPECT_NE(text.find("\"metric\":\"latency\",\"type\":\"histogram\",\"count\":2"),
            std::string::npos);
  EXPECT_NE(text.find("\"sum_seconds\":0.002"), std::string::npos);
  EXPECT_NE(text.find("\"p99_seconds\":"), std::string::npos);
  // Every line is one JSON object (cheap structural check: braces balance,
  // one object per line).
  std::size_t lines = 0;
  for (std::size_t pos = 0; pos < text.size();) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    EXPECT_EQ(text[pos], '{');
    EXPECT_EQ(text[eol - 1], '}');
    pos = eol + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(ObsExport, SanitizesMetricNames) {
  obs::Snapshot snap;
  obs::DomainSnapshot d;
  d.name = "weird-domain";
  d.counters.emplace_back("odd.metric", 1);
  snap.domains.push_back(std::move(d));
  const std::string text = obs::prometheus_text(snap);
  EXPECT_NE(text.find("bmh_weird_domain_odd_metric_total 1"), std::string::npos);
}

TEST(ObsExport, TraceJsonLines) {
  std::vector<obs::TraceEvent> events(1);
  events[0].name = "match";
  events[0].start_ns = 10;
  events[0].dur_ns = 5;
  events[0].depth = 2;
  events[0].id = 7;
  EXPECT_EQ(obs::trace_json_lines(events),
            "{\"record\":\"span\",\"name\":\"match\",\"id\":7,\"depth\":2,"
            "\"start_ns\":10,\"dur_ns\":5}\n");
}

// --------------------------------------------------- engine integration ---

TEST(ObsEngine, MetricsMatchStatsAndStages) {
  EngineConfig config;
  config.threads = 2;
  config.graph_cache_mb = 64;
  Engine engine(config);

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    JobSpec job;
    job.name = "j" + std::to_string(i);
    job.input = parse_graph_spec("gen:er:n=512,deg=4");
    job.seed = 7;  // one shared instance: 1 miss, 5 hits (modulo racing)
    jobs.push_back(job);
  }
  const std::vector<JobResult> results = engine.run_collect(jobs);
  ASSERT_EQ(results.size(), 6u);
  for (const JobResult& r : results) EXPECT_TRUE(r.ok) << r.error;

  const Engine::Stats stats = engine.stats();
  EXPECT_EQ(stats.jobs_run, 6u);
  EXPECT_EQ(stats.jobs_failed, 0u);

  const obs::Snapshot snap = engine.metrics();
  // stats() is a view over these same instruments.
  EXPECT_EQ(snap.counter_total("worker", "jobs_run"), stats.jobs_run);
  EXPECT_EQ(snap.counter_total("worker", "jobs_failed"), stats.jobs_failed);
  // The cache domain and the legacy Stats struct read the same counters.
  ASSERT_NE(engine.cache(), nullptr);
  const GraphCache::Stats cache_stats = engine.cache()->stats();
  EXPECT_EQ(snap.counter_total("graph_cache", "hits"), cache_stats.hits);
  EXPECT_EQ(snap.counter_total("graph_cache", "misses"), cache_stats.misses);
  EXPECT_EQ(cache_stats.hits + cache_stats.misses, 6u);

  if (obs::kEnabled) {
    // Every job recorded exactly one sample into the per-stage and per-job
    // histograms, and the latency totals are coherent.
    EXPECT_EQ(snap.histogram_merged("worker", "job").count, 6u);
    EXPECT_EQ(snap.histogram_merged("worker", "queue_wait").count, 6u);
    EXPECT_EQ(snap.histogram_merged("worker", "graph_acquire").count, 6u);
    EXPECT_EQ(snap.histogram_merged("worker", "stage_match").count, 6u);
    EXPECT_GT(snap.histogram_merged("worker", "job").sum_ns, 0u);

    // The trace journals saw the pipeline stages.
    const std::vector<obs::TraceEvent> events = engine.trace_events();
    EXPECT_FALSE(events.empty());
    bool saw_match = false;
    for (const obs::TraceEvent& e : events)
      if (std::string_view(e.name) == "match") saw_match = true;
    EXPECT_TRUE(saw_match);
  }
}

TEST(ObsEngine, SnapshotsAreConsistentWhileServing) {
  // Satellite of the stats()-consistency fix: while jobs run, every
  // snapshot's per-worker domain must be post-burst consistent —
  // jobs_failed <= jobs_run, and (when recording) the job histogram count
  // equals jobs_run for that worker.
  EngineConfig config;
  config.threads = 2;
  Engine engine(config);

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 40; ++i) {
    JobSpec job;
    job.name = "s" + std::to_string(i);
    job.input = parse_graph_spec("gen:er:n=256,deg=3");
    jobs.push_back(job);
  }

  std::atomic<bool> done{false};
  std::thread runner([&] {
    (void)engine.run(jobs, nullptr);
    done.store(true);
  });
  while (!done.load()) {
    const obs::Snapshot snap = engine.metrics();
    for (const obs::DomainSnapshot& d : snap.domains) {
      if (d.name != "worker") continue;
      const std::uint64_t run = d.counter_or("jobs_run");
      EXPECT_LE(d.counter_or("jobs_failed"), run);
      if (obs::kEnabled) {
        // The Engine constructor materializes every worker instrument before
        // the pool starts, so the histogram exists in every snapshot. EXPECT
        // (not ASSERT): an early return here would skip runner.join().
        const obs::HistogramData* job_hist = d.histogram("job");
        EXPECT_NE(job_hist, nullptr) << "worker " << d.instance;
        if (job_hist != nullptr)
          EXPECT_EQ(job_hist->count, run) << "worker " << d.instance;
      }
    }
  }
  runner.join();
  EXPECT_EQ(engine.stats().jobs_run, 40u);
}

} // namespace
} // namespace bmh
