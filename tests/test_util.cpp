/// Unit tests for timers, run statistics, tables, env knobs, CLI parsing,
/// and OpenMP thread controls.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"

namespace bmh {
namespace {

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds());
}

TEST(RunStats, GeomeanOfConstantIsConstant) {
  RunStats s;
  for (int i = 0; i < 5; ++i) s.add(2.0);
  EXPECT_NEAR(s.geomean(), 2.0, 1e-9);
}

TEST(RunStats, WarmupSkipsLeadingSamples) {
  RunStats s;
  s.add(100.0);  // warm-up outlier
  s.add(1.0);
  s.add(1.0);
  EXPECT_NEAR(s.geomean(1), 1.0, 1e-9);
  EXPECT_NEAR(s.min(1), 1.0, 1e-9);
  EXPECT_NEAR(s.mean(1), 1.0, 1e-9);
}

TEST(RunStats, GeomeanMixesMultiplicatively) {
  RunStats s;
  s.add(1.0);
  s.add(4.0);
  EXPECT_NEAR(s.geomean(), 2.0, 1e-9);
}

TEST(RunStats, ThrowsWhenWarmupConsumesAll) {
  RunStats s;
  s.add(1.0);
  EXPECT_THROW((void)s.geomean(1), std::invalid_argument);
}

TEST(Table, RendersAlignedColumnsWithHeaderRule) {
  Table t({"name", "value"});
  t.row().add("alpha").add(3.14159, 2);
  t.row().add("b").add(std::int64_t{42});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutputHasOneLinePerRow) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  t.row().add(3).add(4);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), std::logic_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FormatCount, InsertsThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(12345678), "12,345,678");
  EXPECT_EQ(format_count(-1234), "-1,234");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Env, FallbacksWhenUnset) {
  ::unsetenv("BMH_TEST_UNSET_VAR");
  EXPECT_EQ(env_double("BMH_TEST_UNSET_VAR", 1.5), 1.5);
  EXPECT_EQ(env_int("BMH_TEST_UNSET_VAR", 7), 7);
  EXPECT_EQ(env_string("BMH_TEST_UNSET_VAR", "dflt"), "dflt");
}

TEST(Env, ParsesSetValues) {
  ::setenv("BMH_TEST_VAR", "2.5", 1);
  EXPECT_EQ(env_double("BMH_TEST_VAR", 0.0), 2.5);
  ::setenv("BMH_TEST_VAR", "11", 1);
  EXPECT_EQ(env_int("BMH_TEST_VAR", 0), 11);
  ::unsetenv("BMH_TEST_VAR");
}

TEST(Env, MalformedValuesFallBack) {
  ::setenv("BMH_TEST_VAR", "not-a-number", 1);
  EXPECT_EQ(env_double("BMH_TEST_VAR", 3.0), 3.0);
  EXPECT_EQ(env_int("BMH_TEST_VAR", 5), 5);
  ::unsetenv("BMH_TEST_VAR");
}

TEST(Env, ScaledAppliesFloor) {
  ::setenv("BMH_SCALE", "0.01", 1);
  EXPECT_EQ(scaled(1000, 64), 64);
  ::unsetenv("BMH_SCALE");
  EXPECT_EQ(scaled(1000, 64), 1000);
}

TEST(Cli, ParsesFlagsAndPositional) {
  // Note: a bare `--flag token` pair is read as key/value, so positional
  // arguments must precede flags or follow `--key=value` style flags.
  const char* argv[] = {"prog", "--n", "100", "input.mtx", "--x=3.5", "--verbose"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 3.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.mtx");
}

TEST(Cli, FallbacksForMissingKeys) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("mode", "auto"), "auto");
  EXPECT_EQ(args.get_int("n", -1), -1);
}

TEST(Threading, GuardRestoresThreadCount) {
  const int before = max_threads();
  {
    ThreadCountGuard guard(1);
    EXPECT_EQ(max_threads(), 1);
  }
  EXPECT_EQ(max_threads(), before);
}

TEST(Threading, SetNumThreadsRejectsNonPositive) {
  EXPECT_THROW(set_num_threads(0), std::invalid_argument);
  EXPECT_THROW(set_num_threads(-2), std::invalid_argument);
}

TEST(Threading, NumProcsPositive) { EXPECT_GE(num_procs(), 1); }

} // namespace
} // namespace bmh
