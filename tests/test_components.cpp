/// Tests for connected component analysis.

#include <gtest/gtest.h>

#include "analysis/components.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace bmh {
namespace {

TEST(Components, SingleEdgeIsOneComponent) {
  const BipartiteGraph g = graph_from_rows(1, 1, {{0}});
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.num_components, 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, IsolatedVerticesAreTrivialComponents) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{0}, {}, {}});
  const ComponentInfo info = connected_components(g);
  // {r0, c0}, {r1}, {r2}, {c1}, {c2}.
  EXPECT_EQ(info.num_components, 5);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, BlockDiagonalHasOneComponentPerBlock) {
  const BipartiteGraph g =
      make_block_diagonal({make_cycle(4), make_cycle(6), make_full(3)});
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.num_components, 3);
  // Rows of the same cycle share a component id; different blocks differ.
  EXPECT_EQ(info.row_component[0], info.row_component[3]);
  EXPECT_NE(info.row_component[0], info.row_component[4]);
  EXPECT_NE(info.row_component[4], info.row_component[10]);
  // Rows and columns of the same block agree.
  EXPECT_EQ(info.row_component[0], info.col_component[0]);
}

TEST(Components, LargestComponentTracked) {
  const BipartiteGraph g = make_block_diagonal({make_cycle(3), make_full(5)});
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.largest_rows, 5);
  EXPECT_EQ(info.largest_cols, 5);
}

TEST(Components, FullMatrixIsConnected) {
  EXPECT_TRUE(is_connected(make_full(10)));
}

TEST(Components, MeshIsConnected) {
  EXPECT_TRUE(is_connected(make_mesh(12, 9)));
}

TEST(Components, RoadCycleIsConnectedSparseRandomIsNot) {
  // The road generator without drops contains a Hamiltonian cycle, so it
  // is deterministically connected; very sparse ER certainly is not (it
  // has isolated vertices).
  EXPECT_TRUE(is_connected(make_road_like(2000, 0.2, 0.0, 3)));
  EXPECT_FALSE(is_connected(make_erdos_renyi(2000, 2000, 1000, 3)));
}

TEST(Components, EmptyGraph) {
  const BipartiteGraph g(0, 0, {0}, {});
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(connected_components(g).num_components, 0);
}

} // namespace
} // namespace bmh
