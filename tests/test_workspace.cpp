/// \file test_workspace.cpp
/// \brief Tests for the Workspace scratch-arena subsystem: lease semantics,
/// parity of the `_ws` overloads with the classic entry points, and the
/// allocation-freedom of the warm batch-serving hot paths (certified by the
/// global allocation counter from bench_common.hpp).

// Exactly one TU per binary may define this before including
// bench_common.hpp: it replaces the global operator new/delete with
// counting versions.
#define BMH_COUNT_ALLOCS

#include "../bench/bench_common.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "test_helpers.hpp"

namespace bmh {
namespace {

using ::bmh::testing::expect_valid;
using ::bmh::testing::small_graph_zoo;

// ------------------------------------------------------------ workspace ---

TEST(Workspace, LeasesAreStableAndMonotonic) {
  Workspace ws;
  std::vector<vid_t>& a = ws.vec<vid_t>("t.a", 100);
  EXPECT_EQ(a.size(), 100u);
  a[0] = 7;
  const vid_t* data = a.data();

  // Same tag, same or smaller size: same buffer, no reallocation.
  std::vector<vid_t>& again = ws.vec<vid_t>("t.a", 50);
  EXPECT_EQ(&again, &a);
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(again.size(), 50u);
  EXPECT_EQ(again[0], 7);  // contents unspecified but here: stale value

  // Growth reallocates but keeps the same logical lease.
  std::vector<vid_t>& grown = ws.vec<vid_t>("t.a", 1000);
  EXPECT_EQ(&grown, &a);
  EXPECT_EQ(grown.size(), 1000u);
  EXPECT_GE(grown.capacity(), 1000u);

  EXPECT_EQ(ws.lease_count(), 1u);
  EXPECT_GE(ws.bytes_reserved(), 1000u * sizeof(vid_t));
}

TEST(Workspace, FillAndBufSemantics) {
  Workspace ws;
  std::vector<double>& filled = ws.vec<double>("t.fill", 8, 2.5);
  for (const double v : filled) EXPECT_EQ(v, 2.5);

  std::vector<int>& stack = ws.buf<int>("t.stack");
  stack.push_back(1);
  stack.push_back(2);
  std::vector<int>& cleared = ws.buf<int>("t.stack");
  EXPECT_EQ(&cleared, &stack);
  EXPECT_TRUE(cleared.empty());
  EXPECT_GE(cleared.capacity(), 2u);  // capacity survives the re-lease
}

TEST(Workspace, ObjectLeasePersists) {
  Workspace ws;
  Matching& m = ws.obj<Matching>("t.matching");
  m.reset(4, 4);
  m.match(1, 2);
  Matching& again = ws.obj<Matching>("t.matching");
  EXPECT_EQ(&again, &m);
  EXPECT_EQ(again.row_match[1], 2);
}

TEST(Workspace, TagTypeMismatchThrows) {
  Workspace ws;
  (void)ws.vec<vid_t>("t.typed", 4);
  EXPECT_THROW((void)ws.vec<double>("t.typed", 4), std::logic_error);
  EXPECT_THROW((void)ws.obj<Matching>("t.typed"), std::logic_error);
  (void)ws.obj<ScalingResult>("t.object");
  EXPECT_THROW((void)ws.vec<double>("t.object", 1), std::logic_error);
}

TEST(Workspace, ReleaseDropsEverything) {
  Workspace ws;
  (void)ws.vec<vid_t>("t.a", 1000);
  (void)ws.buf<double>("t.b");
  EXPECT_EQ(ws.lease_count(), 2u);
  ws.release();
  EXPECT_EQ(ws.lease_count(), 0u);
  EXPECT_EQ(ws.bytes_reserved(), 0u);
  // Leasing after release works (fresh buffers).
  EXPECT_EQ(ws.vec<vid_t>("t.a", 3).size(), 3u);
}

TEST(Workspace, ThreadLocalInstancesAreDistinct) {
  Workspace* main_ws = &Workspace::for_this_thread();
  EXPECT_EQ(main_ws, &Workspace::for_this_thread());  // stable per thread
  Workspace* other_ws = nullptr;
  std::thread t([&] { other_ws = &Workspace::for_this_thread(); });
  t.join();
  ASSERT_NE(other_ws, nullptr);
  EXPECT_NE(other_ws, main_ws);
}

// ----------------------------------------------------- `_ws` parity ------

/// The `_ws` overloads must produce bit-identical results to the classic
/// entry points: they share the same RNG streams and visit orders.
TEST(WorkspaceParity, HeuristicsMatchClassicEntryPoints) {
  Workspace ws;
  Matching out;
  for (const BipartiteGraph& g : small_graph_zoo()) {
    const ScalingResult s = scale_sinkhorn_knopp(g, {5, 0.0});

    karp_sipser_ws(g, 7, nullptr, ws, out);
    EXPECT_EQ(out.row_match, karp_sipser(g, 7).row_match);

    match_random_edges_ws(g, 7, ws, out);
    EXPECT_EQ(out.row_match, match_random_edges(g, 7).row_match);

    match_random_vertices_ws(g, 7, ws, out);
    EXPECT_EQ(out.row_match, match_random_vertices(g, 7).row_match);

    match_min_degree_ws(g, ws, out);
    EXPECT_EQ(out.row_match, match_min_degree(g).row_match);

    one_sided_from_scaling_ws(g, s, 7, ws, out);
    EXPECT_EQ(out.row_match, one_sided_from_scaling(g, s, 7).row_match);

    two_sided_from_scaling_ws(g, s, 7, nullptr, ws, out);
    EXPECT_EQ(out.row_match, two_sided_from_scaling(g, s, 7).row_match);

    k_out_match_ws(g, 5, 2, 7, ws, out);
    EXPECT_EQ(out.row_match, k_out_match(g, 5, 2, 7).row_match);

    hopcroft_karp_ws(g, ws, out);
    EXPECT_EQ(out.cardinality(), hopcroft_karp(g).cardinality());
    expect_valid(g, out, "hopcroft_karp_ws");

    mc21_ws(g, ws, out);
    EXPECT_EQ(out.cardinality(), sprank_ws(g, ws));
    expect_valid(g, out, "mc21_ws");

    push_relabel_ws(g, ws, out);
    EXPECT_EQ(out.cardinality(), sprank(g));
    expect_valid(g, out, "push_relabel_ws");
  }
}

TEST(WorkspaceParity, ScalingKernelsMatchClassicEntryPoints) {
  const BipartiteGraph g = make_planted_perfect(300, 4, 5);
  Workspace ws;
  ScalingResult out;

  scale_sinkhorn_knopp_ws(g, {5, 0.0}, ws, out);
  const ScalingResult sk = scale_sinkhorn_knopp(g, {5, 0.0});
  EXPECT_EQ(out.dr, sk.dr);
  EXPECT_EQ(out.dc, sk.dc);
  EXPECT_EQ(out.iterations, sk.iterations);
  EXPECT_EQ(out.error, sk.error);

  scale_ruiz_ws(g, {5, 0.0}, ws, out);
  const ScalingResult rz = scale_ruiz(g, {5, 0.0});
  EXPECT_EQ(out.dr, rz.dr);
  EXPECT_EQ(out.dc, rz.dc);
  EXPECT_EQ(out.error, rz.error);

  identity_scaling_ws(g, ws, out);
  const ScalingResult id = identity_scaling(g);
  EXPECT_EQ(out.dr, id.dr);
  EXPECT_EQ(out.error, id.error);
  EXPECT_EQ(scaling_error_ws(g, out, ws), scaling_error(g, id));
}

TEST(WorkspaceParity, PipelineMatchesClassicEntryPoint) {
  const BipartiteGraph g = make_erdos_renyi(512, 512, 3072, 11);
  for (const char* algo : {"two_sided", "one_sided", "karp_sipser", "hopcroft_karp"}) {
    PipelineConfig config;
    config.algorithm = algo;
    config.options.seed = 13;
    config.augment = (std::string(algo) == "one_sided");

    Workspace ws;
    PipelineResult out;
    run_pipeline_ws(g, config, ws, out);
    // Run twice through the same workspace: results must not depend on
    // arena warmth.
    run_pipeline_ws(g, config, ws, out);
    const PipelineResult fresh = run_pipeline(g, config);

    EXPECT_EQ(out.matching.row_match, fresh.matching.row_match) << algo;
    EXPECT_EQ(out.cardinality, fresh.cardinality) << algo;
    EXPECT_EQ(out.heuristic_cardinality, fresh.heuristic_cardinality) << algo;
    EXPECT_EQ(out.valid, fresh.valid) << algo;
    EXPECT_EQ(out.exact, fresh.exact) << algo;
    EXPECT_EQ(out.sprank, fresh.sprank) << algo;
    EXPECT_EQ(out.scaling_iterations, fresh.scaling_iterations) << algo;
    EXPECT_EQ(out.stages.size(), fresh.stages.size()) << algo;
  }
}

// ------------------------------------------- allocation-freedom proofs ---

TEST(WorkspaceHotPath, KernelSteadyStateIsAllocationFree) {
  // Counting is compiled out under TSan (the operator-new replacement
  // bypasses TSan's allocator interposition — see bench_common.hpp); the
  // alloc assertions below then compare zeros while the rest still runs.
#if !defined(BMH_BENCH_TSAN)
  static_assert(bench::kAllocCountingEnabled);
#endif
  const BipartiteGraph g = make_erdos_renyi(1024, 1024, 8192, 42);
  const ScalingResult s = scale_sinkhorn_knopp(g, {5, 0.0});
  Workspace ws;
  Matching out;
  // Warm with the same seed sequence the measured pass runs: a previously
  // unseen seed may legitimately grow a stack buffer once (monotonic arena
  // growth), which is not steady state.
  const auto sweep = [&] {
    for (int r = 0; r < 20; ++r) {
      two_sided_from_scaling_ws(g, s, static_cast<std::uint64_t>(r), nullptr, ws, out);
      karp_sipser_ws(g, static_cast<std::uint64_t>(r), nullptr, ws, out);
      hopcroft_karp_ws(g, ws, out);
      // k_out's subgraph CSR is pooled (GraphBuilder::build_into into a
      // workspace-kept graph), so it is in the zero-allocation club too.
      k_out_match_ws(g, 5, 2, static_cast<std::uint64_t>(r), ws, out);
    }
  };
  sweep();
  const bench::AllocStats before = bench::alloc_stats();
  sweep();
  const bench::AllocStats after = bench::alloc_stats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(WorkspaceHotPath, PipelineSteadyStateIsAllocationFree) {
  const BipartiteGraph g = make_erdos_renyi(1024, 1024, 8192, 42);
  // k_out included: with pooled CSR construction the whole registry runs
  // allocation-free warm, not "everything but k_out".
  for (const char* algo : {"two_sided", "k_out"}) {
    PipelineConfig config;
    config.algorithm = algo;
    config.options.seed = 7;
    Workspace ws;
    PipelineResult out;
    // Warm with the seed sequence the measured pass runs (a new seed may
    // legitimately grow a stack buffer once).
    const auto sweep = [&] {
      for (int r = 0; r < 20; ++r) {
        // Seeds vary per job in a batch; the warm worker must stay
        // allocation-free regardless (rebindable algorithm cache).
        config.options.seed = static_cast<std::uint64_t>(r);
        run_pipeline_ws(g, config, ws, out);
      }
    };
    sweep();
    const bench::AllocStats before = bench::alloc_stats();
    sweep();
    const bench::AllocStats after = bench::alloc_stats();
    EXPECT_EQ(after.allocations, before.allocations) << algo;
    EXPECT_EQ(after.live_bytes, before.live_bytes) << algo;
  }
}

TEST(WorkspaceHotPath, CacheServedJobGraphPathIsAllocationFree) {
  // The last per-job graph cost in the engine: a warm GraphCache lookup
  // (canonical key render into the thread-local buffer + sharded LRU hit)
  // performs zero heap allocations.
  GraphCache cache;
  const GraphSpec spec = parse_graph_spec("gen:er:n=1024,deg=8,seed=5");
  for (int warm = 0; warm < 3; ++warm)
    (void)cache.get_or_build(spec, static_cast<std::uint64_t>(warm));
  const bench::AllocStats before = bench::alloc_stats();
  for (int r = 0; r < 20; ++r) {
    const auto g = cache.get_or_build(spec, static_cast<std::uint64_t>(r));
    EXPECT_EQ(g->num_rows(), 1024);
  }
  const bench::AllocStats after = bench::alloc_stats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(WorkspaceHotPath, UndirectedPipelineSteadyStateIsAllocationFree) {
  // The kind=undirected-match serving path: conversion, symmetric scaling,
  // choice sampling and the undirected Karp–Sipser all lease from the
  // workspace, so a warm worker alternating the registered algorithms —
  // and both conversion shapes — allocates nothing.
  const BipartiteGraph square = make_mesh(24, 24);     // symmetric view
  const BipartiteGraph rect = make_erdos_renyi(384, 512, 2048, 7);  // union
  Workspace ws;
  PipelineResult out;
  PipelineConfig config;
  const auto sweep = [&] {
    for (int r = 0; r < 10; ++r) {
      for (const char* algo : {"one_out", "greedy", "two_thirds"}) {
        config.algorithm = algo;
        config.options.seed = static_cast<std::uint64_t>(r);
        run_undirected_pipeline_ws(square, config, ws, out);
        EXPECT_TRUE(out.valid) << algo;
        run_undirected_pipeline_ws(rect, config, ws, out);
        EXPECT_TRUE(out.valid) << algo;
      }
    }
  };
  sweep();
  const bench::AllocStats before = bench::alloc_stats();
  sweep();
  const bench::AllocStats after = bench::alloc_stats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(WorkspaceHotPath, SprankAnalysisSteadyStateIsAllocationFree) {
  // kind=analyze type=sprank is the cheapest exact probe and stays on the
  // certified zero-allocation path (dm/koenig build their structures per
  // call and are deliberately not certified).
  const BipartiteGraph g = make_erdos_renyi(1024, 1024, 8192, 42);
  Workspace ws;
  PipelineResult out;
  PipelineConfig config;
  config.algorithm = "sprank";
  const auto sweep = [&] {
    for (int r = 0; r < 10; ++r) run_analyze_pipeline_ws(g, config, ws, out);
  };
  sweep();
  const bench::AllocStats before = bench::alloc_stats();
  sweep();
  const bench::AllocStats after = bench::alloc_stats();
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(out.sprank, sprank(g));
  EXPECT_TRUE(out.exact);
}

// ---------------------------------------------- batch runner reuse -------

std::string batch_jsonl(const std::vector<JobSpec>& jobs, const BatchOptions& options) {
  const std::vector<JobResult> results = run_batch(jobs, options);
  std::string out;
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    out += to_json_line(r, /*include_timings=*/false);
    out += '\n';
  }
  return out;
}

TEST(WorkspaceHotPath, BatchRerunIsByteIdenticalWithZeroAllocatorGrowth) {
  std::istringstream in(
      "input=gen:er:n=1024,deg=8 algo=two_sided iters=5\n"
      "input=gen:er:n=1024,deg=8 algo=one_sided iters=5\n"
      "input=gen:er:n=512,deg=6 algo=karp_sipser\n"
      "input=gen:mesh:nx=24 algo=one_sided augment=1\n"
      "input=gen:planted:n=512 algo=hopcroft_karp\n");
  const std::vector<JobSpec> jobs = parse_job_specs(in);
  BatchOptions options;
  options.workers = 2;
  options.seed = 99;

  const std::string warm = batch_jsonl(jobs, options);  // warms everything once
  const bench::AllocStats before = bench::alloc_stats();
  {
    const std::string second = batch_jsonl(jobs, options);
    EXPECT_EQ(second, warm);
  }
  const bench::AllocStats after = bench::alloc_stats();
  // The second pass allocates only transients (per-job result records, the
  // JSONL string, the worker arenas freed at join): net heap growth is zero.
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

} // namespace
} // namespace bmh
