/// Unit tests for the PRNG layer: determinism, forking independence, range
/// contracts. Everything downstream (generators, heuristics) relies on the
/// reproducibility guarantees established here.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace bmh {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleOpen0NeverZero) {
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double_open0();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(21);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowIsApproximatelyUniform) {
  Rng rng(33);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int h : hist)
    EXPECT_NEAR(h, expected, 5.0 * std::sqrt(expected));  // ~5 sigma
}

TEST(Rng, ForkIsDeterministic) {
  const Rng root(99);
  Rng a = root.fork(42);
  Rng b = root.fork(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedLanesAreIndependentStreams) {
  const Rng root(99);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 256; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.fork(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, MeanOfUniformDrawsIsHalf) {
  Rng rng(77);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(MixSeed, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 50; ++a)
    for (std::uint64_t b = 0; b < 50; ++b) seen.insert(mix_seed(1, a, b));
  EXPECT_EQ(seen.size(), 2500u);
}

TEST(Rng, SatisfiesUniformRandomBitGeneratorContract) {
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
  Rng rng(1);
  (void)rng();  // callable
}

} // namespace
} // namespace bmh
