/// Unit tests for COO -> CSR assembly: deduplication, validation, ordering
/// invariance, and reuse.

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"

namespace bmh {
namespace {

TEST(GraphBuilder, DeduplicatesRepeatedEdges) {
  GraphBuilder b(2, 2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  const BipartiteGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(GraphBuilder, SortsColumnsWithinRow) {
  GraphBuilder b(1, 5);
  b.add_edge(0, 4);
  b.add_edge(0, 0);
  b.add_edge(0, 2);
  const BipartiteGraph g = b.build();
  const auto nbrs = g.row_neighbors(0);
  EXPECT_EQ(std::vector<vid_t>(nbrs.begin(), nbrs.end()), (std::vector<vid_t>{0, 2, 4}));
}

TEST(GraphBuilder, ThrowsOnOutOfRangeIds) {
  GraphBuilder b(2, 2);
  b.add_edge(0, 2);
  EXPECT_THROW((void)b.build(), std::out_of_range);
  GraphBuilder b2(2, 2);
  b2.add_edge(2, 0);
  EXPECT_THROW((void)b2.build(), std::out_of_range);
  GraphBuilder b3(2, 2);
  b3.add_edge(-1, 0);
  EXPECT_THROW((void)b3.build(), std::out_of_range);
}

TEST(GraphBuilder, RejectsNegativeDimensions) {
  EXPECT_THROW(GraphBuilder(-1, 2), std::invalid_argument);
  EXPECT_THROW(GraphBuilder(2, -1), std::invalid_argument);
}

TEST(GraphBuilder, IsReusableAfterBuild) {
  GraphBuilder b(2, 2);
  b.add_edge(0, 0);
  const BipartiteGraph g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 1);
  EXPECT_EQ(b.pending_edges(), 0u);
  b.add_edge(1, 1);
  const BipartiteGraph g2 = b.build();
  EXPECT_EQ(g2.num_edges(), 1);
  EXPECT_TRUE(g2.has_edge(1, 1));
  EXPECT_FALSE(g2.has_edge(0, 0));
}

TEST(GraphBuilder, InsertionOrderDoesNotMatter) {
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 2}, {0, 0}};
  const BipartiteGraph a = graph_from_edges(3, 3, edges);
  std::reverse(edges.begin(), edges.end());
  const BipartiteGraph b = graph_from_edges(3, 3, edges);
  EXPECT_TRUE(a.structurally_equal(b));
}

TEST(GraphBuilder, EmptyBuildGivesEmptyGraph) {
  GraphBuilder b(3, 4);
  const BipartiteGraph g = b.build();
  EXPECT_EQ(g.num_rows(), 3);
  EXPECT_EQ(g.num_cols(), 4);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphBuilder, BuildIntoMatchesBuildAcrossReuse) {
  // The pooled path must produce graphs identical to build() — CSC view
  // included — while the target graph object and builder are recycled
  // through different shapes.
  GraphBuilder pooled;
  BipartiteGraph out;
  for (const int rounds : {0, 1, 2}) {
    const vid_t n = 4 + 3 * rounds;
    GraphBuilder fresh(n, n);
    pooled.reset(n, n);
    for (vid_t i = 0; i < n; ++i) {
      fresh.add_edge(i, (i + rounds) % n);
      pooled.add_edge(i, (i + rounds) % n);
      fresh.add_edge(i, (i + rounds) % n);  // duplicates collapse in both modes
      pooled.add_edge(i, (i + rounds) % n);
      fresh.add_edge(n - 1 - i, i);
      pooled.add_edge(n - 1 - i, i);
    }
    const BipartiteGraph reference = fresh.build();
    pooled.build_into(out);
    EXPECT_TRUE(out.structurally_equal(reference)) << "round " << rounds;
    ASSERT_EQ(out.num_cols(), reference.num_cols());
    for (vid_t j = 0; j < out.num_cols(); ++j) {
      const auto a = out.col_neighbors(j);
      const auto b = reference.col_neighbors(j);
      EXPECT_EQ(std::vector<vid_t>(a.begin(), a.end()),
                std::vector<vid_t>(b.begin(), b.end()))
          << "column " << j << " round " << rounds;
    }
  }
}

TEST(GraphBuilder, BuildIntoValidatesAndLeavesTargetIntactOnThrow) {
  GraphBuilder b(2, 2);
  b.add_edge(0, 0);
  BipartiteGraph out;
  b.build_into(out);
  EXPECT_EQ(out.num_edges(), 1);
  b.reset(2, 2);
  b.add_edge(0, 5);  // out of range: assemble throws before touching `out`
  EXPECT_THROW(b.build_into(out), std::out_of_range);
  EXPECT_EQ(out.num_edges(), 1);
  EXPECT_TRUE(out.has_edge(0, 0));
}

TEST(GraphBuilder, ResetRejectsNegativeDimensions) {
  GraphBuilder b;
  EXPECT_THROW(b.reset(-1, 2), std::invalid_argument);
  EXPECT_THROW(b.reset(2, -1), std::invalid_argument);
}

TEST(GraphFromRows, RowCountMismatchThrows) {
  EXPECT_THROW((void)graph_from_rows(2, 2, {{0}}), std::invalid_argument);
}

TEST(GraphFromRows, BuildsExpectedStructure) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0, 1}, {}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.row_degree(0), 2);
  EXPECT_EQ(g.row_degree(1), 0);
}

} // namespace
} // namespace bmh
