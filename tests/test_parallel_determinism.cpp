/// Cross-cutting parallel-correctness tests: results must not depend on the
/// OpenMP thread count (the property the paper highlights — quality does
/// not deteriorate with parallelism), and repeated parallel runs must stay
/// valid under race-heavy schedules.

#include <gtest/gtest.h>

#include "core/one_sided.hpp"
#include "core/two_sided.hpp"
#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "test_helpers.hpp"
#include "util/threading.hpp"

namespace bmh {
namespace {

class ThreadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweepTest, ScalingIsThreadCountInvariant) {
  ThreadCountGuard guard(GetParam());
  const BipartiteGraph g = make_planted_perfect(2000, 4, 3);
  const ScalingResult r = scale_sinkhorn_knopp(g, {5, 0.0});
  // Reference from a single-threaded run.
  ScalingResult ref;
  {
    ThreadCountGuard inner(1);
    ref = scale_sinkhorn_knopp(g, {5, 0.0});
  }
  ASSERT_EQ(r.dr.size(), ref.dr.size());
  for (std::size_t i = 0; i < r.dr.size(); ++i)
    EXPECT_NEAR(r.dr[i], ref.dr[i], 1e-12 * std::abs(ref.dr[i]) + 1e-300) << i;
  EXPECT_NEAR(r.error, ref.error, 1e-12);
}

TEST_P(ThreadSweepTest, ChoiceSamplingIsThreadCountInvariant) {
  ThreadCountGuard guard(GetParam());
  const BipartiteGraph g = make_erdos_renyi(3000, 3000, 12000, 5);
  const ScalingResult s = scale_sinkhorn_knopp(g, {3, 0.0});
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 11);
  TwoSidedChoices ref;
  {
    ThreadCountGuard inner(1);
    ref = sample_two_sided_choices(g, s, 11);
  }
  EXPECT_EQ(ch.rchoice, ref.rchoice);
  EXPECT_EQ(ch.cchoice, ref.cchoice);
}

TEST_P(ThreadSweepTest, GeneratorsAreThreadCountInvariant) {
  ThreadCountGuard guard(GetParam());
  const BipartiteGraph g = make_erdos_renyi(2000, 2000, 10000, 7);
  BipartiteGraph ref;
  {
    ThreadCountGuard inner(1);
    ref = make_erdos_renyi(2000, 2000, 10000, 7);
  }
  EXPECT_TRUE(g.structurally_equal(ref));
}

TEST_P(ThreadSweepTest, OneSidedCardinalityIsThreadCountInvariant) {
  // Each row's pick is deterministic; |M| = #distinct picked columns does
  // not depend on which racy write survives.
  ThreadCountGuard guard(GetParam());
  const BipartiteGraph g = make_planted_perfect(3000, 3, 9);
  const ScalingResult s = scale_sinkhorn_knopp(g, {5, 0.0});
  const vid_t card = one_sided_from_scaling(g, s, 13).cardinality();
  vid_t ref;
  {
    ThreadCountGuard inner(1);
    ref = one_sided_from_scaling(g, s, 13).cardinality();
  }
  EXPECT_EQ(card, ref);
}

TEST_P(ThreadSweepTest, TwoSidedCardinalityIsThreadCountInvariant) {
  ThreadCountGuard guard(GetParam());
  const BipartiteGraph g = make_planted_perfect(3000, 3, 15);
  const ScalingResult s = scale_sinkhorn_knopp(g, {5, 0.0});
  const vid_t card = two_sided_from_scaling(g, s, 17).cardinality();
  vid_t ref;
  {
    ThreadCountGuard inner(1);
    ref = two_sided_from_scaling(g, s, 17).cardinality();
  }
  EXPECT_EQ(card, ref);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweepTest, ::testing::Values(1, 2, 4, 8, 16));

TEST(RaceStress, OneSidedStaysValidUnderManyParallelRuns) {
  const BipartiteGraph g = make_erdos_renyi(4000, 4000, 16000, 3);
  const ScalingResult s = scale_sinkhorn_knopp(g, {3, 0.0});
  for (int rep = 0; rep < 10; ++rep) {
    const Matching m = one_sided_from_scaling(g, s, static_cast<std::uint64_t>(rep));
    testing::expect_valid(g, m, "one_sided stress");
  }
}

TEST(RaceStress, TwoSidedStaysValidAndExactUnderManyParallelRuns) {
  const BipartiteGraph g = make_erdos_renyi(4000, 4000, 16000, 5);
  const ScalingResult s = scale_sinkhorn_knopp(g, {3, 0.0});
  for (int rep = 0; rep < 10; ++rep) {
    const Matching m = two_sided_from_scaling(g, s, static_cast<std::uint64_t>(rep));
    testing::expect_valid(g, m, "two_sided stress");
  }
}

} // namespace
} // namespace bmh
