/// Unit and property tests for the synthetic graph generators, including
/// the exact structural guarantees of the Fig. 2 adversarial family.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "matching/hopcroft_karp.hpp"

namespace bmh {
namespace {

TEST(ErdosRenyi, RespectsDimensionsAndDeterminism) {
  const BipartiteGraph a = make_erdos_renyi(100, 120, 500, 9);
  const BipartiteGraph b = make_erdos_renyi(100, 120, 500, 9);
  EXPECT_EQ(a.num_rows(), 100);
  EXPECT_EQ(a.num_cols(), 120);
  EXPECT_LE(a.num_edges(), 500);
  EXPECT_GT(a.num_edges(), 450);  // few duplicates at this density
  EXPECT_TRUE(a.structurally_equal(b));
}

TEST(ErdosRenyi, DifferentSeedsDiffer) {
  const BipartiteGraph a = make_erdos_renyi(100, 100, 400, 1);
  const BipartiteGraph b = make_erdos_renyi(100, 100, 400, 2);
  EXPECT_FALSE(a.structurally_equal(b));
}

TEST(ErdosRenyi, RejectsBadArguments) {
  EXPECT_THROW((void)make_erdos_renyi(0, 5, 10, 1), std::invalid_argument);
  EXPECT_THROW((void)make_erdos_renyi(5, 0, 10, 1), std::invalid_argument);
  EXPECT_THROW((void)make_erdos_renyi(5, 5, -1, 1), std::invalid_argument);
}

class KsAdversarialTest : public ::testing::TestWithParam<std::tuple<vid_t, vid_t>> {};

TEST_P(KsAdversarialTest, HasDocumentedBlockStructure) {
  const auto [n, k] = GetParam();
  const BipartiteGraph g = make_ks_adversarial(n, k);
  const vid_t half = n / 2;
  EXPECT_EQ(g.num_rows(), n);
  EXPECT_EQ(g.num_cols(), n);
  // R1 x C1 full.
  for (vid_t i = 0; i < half; i += half / 4)
    for (vid_t j = 0; j < half; j += half / 4) EXPECT_TRUE(g.has_edge(i, j));
  // R2 x C2 empty except nothing: check sampled entries.
  for (vid_t i = half; i < n; i += half / 4)
    for (vid_t j = half; j < n; j += half / 4)
      EXPECT_FALSE(g.has_edge(i, j)) << i << "," << j;
  // The cross diagonals exist (they form the perfect matching).
  for (vid_t i = 0; i < half; ++i) {
    EXPECT_TRUE(g.has_edge(i, half + i));
    EXPECT_TRUE(g.has_edge(half + i, i));
  }
  // Last k rows of R1 are full rows.
  for (vid_t i = half - k; i < half; ++i) EXPECT_EQ(g.row_degree(i), n);
  // Last k columns of C1 are full columns.
  for (vid_t j = half - k; j < half; ++j) EXPECT_EQ(g.col_degree(j), n);
}

TEST_P(KsAdversarialTest, HasPerfectMatching) {
  const auto [n, k] = GetParam();
  const BipartiteGraph g = make_ks_adversarial(n, k);
  EXPECT_EQ(sprank(g), n);
}

INSTANTIATE_TEST_SUITE_P(Family, KsAdversarialTest,
                         ::testing::Values(std::make_tuple(vid_t{32}, vid_t{2}),
                                           std::make_tuple(vid_t{64}, vid_t{4}),
                                           std::make_tuple(vid_t{128}, vid_t{8}),
                                           std::make_tuple(vid_t{256}, vid_t{2}),
                                           std::make_tuple(vid_t{256}, vid_t{16})));

TEST(KsAdversarial, RejectsOddN) {
  EXPECT_THROW((void)make_ks_adversarial(33, 2), std::invalid_argument);
}

TEST(PlantedPerfect, AlwaysFullSprank) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const BipartiteGraph g = make_planted_perfect(200, 3, seed);
    EXPECT_EQ(sprank(g), 200);
  }
}

TEST(PlantedPerfect, ExtraEdgesIncreaseDensity) {
  const BipartiteGraph sparse = make_planted_perfect(100, 0, 1);
  const BipartiteGraph dense = make_planted_perfect(100, 5, 1);
  EXPECT_EQ(sparse.num_edges(), 100);
  EXPECT_GT(dense.num_edges(), 400);
}

TEST(Full, IsCompleteBipartite) {
  const BipartiteGraph g = make_full(7);
  EXPECT_EQ(g.num_edges(), 49);
  for (vid_t i = 0; i < 7; ++i) EXPECT_EQ(g.row_degree(i), 7);
}

TEST(Mesh, FivePointStencilDegrees) {
  const BipartiteGraph g = make_mesh(10, 10);
  EXPECT_EQ(g.num_rows(), 100);
  // Interior vertices have degree 5; corners 3; edges 4.
  EXPECT_EQ(g.row_degree(0), 3);        // corner (0,0)
  EXPECT_EQ(g.row_degree(5), 4);        // boundary
  EXPECT_EQ(g.row_degree(55), 5);       // interior
  EXPECT_EQ(sprank(g), 100);            // diagonal makes it full sprank
}

TEST(RoadLike, DropFractionCreatesSprankDeficiency) {
  const BipartiteGraph full = make_road_like(5000, 0.2, 0.0, 3);
  EXPECT_EQ(sprank(full), 5000);  // diagonal + superdiagonal intact
  const BipartiteGraph deficient = make_road_like(5000, 0.0, 0.10, 3);
  const double ratio = static_cast<double>(sprank(deficient)) / 5000.0;
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.85);
}

TEST(RoadLike, AverageDegreeNearTwo) {
  const BipartiteGraph g = make_road_like(10000, 0.1, 0.0, 1);
  EXPECT_NEAR(average_degree(g), 2.1, 0.2);
}

TEST(PowerLaw, HasHighDegreeVariance) {
  const BipartiteGraph g = make_power_law(2000, 20.0, 1.5, 7);
  const DegreeStats rows = row_degree_stats(g);
  EXPECT_GT(rows.variance, 10.0 * rows.mean);  // heavy tail
  EXPECT_EQ(sprank(g), 2000);                  // permutation planted
}

TEST(PowerLaw, RejectsBadShape) {
  EXPECT_THROW((void)make_power_law(10, 2.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)make_power_law(10, 0.5, 2.0, 1), std::invalid_argument);
}

TEST(KktLike, IsSquareSymmetricStructureWithFullSprank) {
  const BipartiteGraph g = make_kkt_like(300, 100, 3, 11);
  EXPECT_EQ(g.num_rows(), 400);
  EXPECT_EQ(sprank(g), 400);
  // Structural symmetry of the saddle-point form: (i,j) edge implies (j,i).
  for (vid_t i = 0; i < g.num_rows(); i += 13)
    for (const vid_t j : g.row_neighbors(i)) EXPECT_TRUE(g.has_edge(j, i));
}

TEST(OneOut, EveryRowHasExactlyOneChoice) {
  const BipartiteGraph g = make_one_out(500, 3);
  for (vid_t i = 0; i < 500; ++i) EXPECT_EQ(g.row_degree(i), 1);
  EXPECT_EQ(g.num_edges(), 500);
}

TEST(OneOut, ThreadCountIndependent) {
  // Forked per-row streams: same seed gives the same graph however many
  // threads generated it (we just re-run; the runtime may vary threads).
  const BipartiteGraph a = make_one_out(2000, 77);
  const BipartiteGraph b = make_one_out(2000, 77);
  EXPECT_TRUE(a.structurally_equal(b));
}

TEST(Cycle, IsTwoRegular) {
  const BipartiteGraph g = make_cycle(9);
  for (vid_t i = 0; i < 9; ++i) {
    EXPECT_EQ(g.row_degree(i), 2);
    EXPECT_EQ(g.col_degree(i), 2);
  }
  EXPECT_EQ(sprank(g), 9);
}

TEST(RowRegular, ExactRowDegrees) {
  const BipartiteGraph g = make_row_regular(300, 4, 5);
  for (vid_t i = 0; i < 300; ++i) EXPECT_EQ(g.row_degree(i), 4);
}

TEST(BlockDiagonal, ConcatenatesBlocks) {
  const BipartiteGraph a = make_full(3);
  const BipartiteGraph b = make_cycle(4);
  const BipartiteGraph g = make_block_diagonal({a, b});
  EXPECT_EQ(g.num_rows(), 7);
  EXPECT_EQ(g.num_edges(), a.num_edges() + b.num_edges());
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(3, 3));   // block b offset by 3
  EXPECT_FALSE(g.has_edge(0, 3));  // no cross-block edges
}

TEST(DmStructured, BlockSprankComposition) {
  // sprank = h_rows + s_n + v_cols: H contributes all its rows, S is
  // perfect, V contributes all its columns.
  const BipartiteGraph g = make_dm_structured(10, 15, 20, 18, 12, 2, 3);
  EXPECT_EQ(g.num_rows(), 10 + 20 + 18);
  EXPECT_EQ(g.num_cols(), 15 + 20 + 12);
  EXPECT_EQ(sprank(g), 10 + 20 + 12);
}

TEST(DmStructured, RejectsInvalidShapes) {
  EXPECT_THROW((void)make_dm_structured(10, 5, 5, 5, 5, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)make_dm_structured(5, 10, 5, 5, 8, 1, 1), std::invalid_argument);
}

} // namespace
} // namespace bmh
