/// Tests for the Dulmage-Mendelsohn decomposition and the total-support /
/// full-indecomposability predicates used throughout the paper's theory.

#include <gtest/gtest.h>

#include "analysis/dulmage_mendelsohn.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace bmh {
namespace {

TEST(Dm, PerfectMatchingGraphIsAllSquare) {
  const BipartiteGraph g = make_planted_perfect(100, 2, 3);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  EXPECT_EQ(dm.sprank, 100);
  EXPECT_EQ(dm.h_rows, 0);
  EXPECT_EQ(dm.v_rows, 0);
  EXPECT_EQ(dm.s_size, 100);
}

TEST(Dm, RecoversPlantedBlockStructure) {
  const vid_t hr = 12, hc = 20, s = 30, vr = 25, vc = 15;
  const BipartiteGraph g = make_dm_structured(hr, hc, s, vr, vc, 2, 5);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  EXPECT_EQ(dm.h_rows, hr);
  EXPECT_EQ(dm.h_cols, hc);
  EXPECT_EQ(dm.s_size, s);
  EXPECT_EQ(dm.v_rows, vr);
  EXPECT_EQ(dm.v_cols, vc);
  EXPECT_EQ(dm.sprank, hr + s + vc);
}

TEST(Dm, SprankDecomposesAcrossParts) {
  // sprank = h_rows + s_size + v_cols for any matrix.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const BipartiteGraph g = make_erdos_renyi(300, 280, 700, seed);
    const DmDecomposition dm = dulmage_mendelsohn(g);
    EXPECT_EQ(dm.sprank, dm.h_rows + dm.s_size + dm.v_cols) << seed;
  }
}

TEST(Dm, HorizontalRowsAllMatchedIntoHorizontalColumns) {
  const BipartiteGraph g = make_erdos_renyi(250, 250, 500, 7);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (dm.row_part[static_cast<std::size_t>(i)] != DmPart::Horizontal) continue;
    const vid_t j = dm.matching.row_match[static_cast<std::size_t>(i)];
    ASSERT_NE(j, kNil) << "H row " << i << " must be matched";
    EXPECT_EQ(dm.col_part[static_cast<std::size_t>(j)], DmPart::Horizontal);
  }
}

TEST(Dm, VerticalColumnsAllMatchedIntoVerticalRows) {
  const BipartiteGraph g = make_erdos_renyi(250, 250, 500, 8);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (dm.col_part[static_cast<std::size_t>(j)] != DmPart::Vertical) continue;
    const vid_t i = dm.matching.col_match[static_cast<std::size_t>(j)];
    ASSERT_NE(i, kNil) << "V col " << j << " must be matched";
    EXPECT_EQ(dm.row_part[static_cast<std::size_t>(i)], DmPart::Vertical);
  }
}

TEST(Dm, UnmatchedVerticesLandInTheRightParts) {
  const BipartiteGraph g = make_erdos_renyi(300, 300, 600, 9);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (!dm.matching.row_matched(i)) {
      EXPECT_EQ(dm.row_part[static_cast<std::size_t>(i)], DmPart::Vertical);
    }
  }
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (!dm.matching.col_matched(j)) {
      EXPECT_EQ(dm.col_part[static_cast<std::size_t>(j)], DmPart::Horizontal);
    }
  }
}

TEST(Dm, NoEdgesFromSquareOrVerticalIntoHorizontalRows) {
  // In the block-triangular form, below-diagonal blocks are zero: an H-row
  // can see any column, but S/V rows cannot see H columns.
  const BipartiteGraph g = make_erdos_renyi(200, 220, 500, 11);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (dm.row_part[static_cast<std::size_t>(i)] == DmPart::Horizontal) continue;
    for (const vid_t j : g.row_neighbors(i))
      EXPECT_NE(dm.col_part[static_cast<std::size_t>(j)], DmPart::Horizontal)
          << "edge (" << i << "," << j << ") violates block triangularity";
  }
  // Likewise V columns are only reachable from V rows... equivalently,
  // S rows cannot see V columns is NOT required; the zero blocks are
  // (S,H), (V,H), (V,S):
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (dm.row_part[static_cast<std::size_t>(i)] != DmPart::Vertical) continue;
    for (const vid_t j : g.row_neighbors(i))
      EXPECT_EQ(dm.col_part[static_cast<std::size_t>(j)], DmPart::Vertical);
  }
}

TEST(TotalSupport, CycleHasIt) { EXPECT_TRUE(has_total_support(make_cycle(12))); }

TEST(TotalSupport, FullMatrixHasIt) { EXPECT_TRUE(has_total_support(make_full(6))); }

TEST(TotalSupport, TriangularMatrixLacksIt) {
  // Upper triangular 3x3: perfect matching exists (the diagonal) but the
  // off-diagonal entries can be in no perfect matching.
  const BipartiteGraph g = graph_from_rows(3, 3, {{0, 1, 2}, {1, 2}, {2}});
  EXPECT_FALSE(has_total_support(g));
}

TEST(TotalSupport, RectangularLacksIt) {
  EXPECT_FALSE(has_total_support(make_erdos_renyi(3, 4, 6, 1)));
}

TEST(TotalSupport, DeficientLacksIt) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {0}});
  EXPECT_FALSE(has_total_support(g));
}

TEST(FullyIndecomposable, FullMatrixIs) {
  EXPECT_TRUE(is_fully_indecomposable(make_full(5)));
}

TEST(FullyIndecomposable, CycleIs) {
  EXPECT_TRUE(is_fully_indecomposable(make_cycle(9)));
}

TEST(FullyIndecomposable, BlockDiagonalIsNot) {
  // Total support holds but the matrix decomposes into two blocks.
  const BipartiteGraph g = make_block_diagonal({make_cycle(4), make_cycle(5)});
  EXPECT_TRUE(has_total_support(g));
  EXPECT_FALSE(is_fully_indecomposable(g));
}

TEST(FullyIndecomposable, PermutationIsNot) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{1}, {2}, {0}});
  EXPECT_TRUE(has_total_support(g));    // every entry in the (unique) PM
  EXPECT_FALSE(is_fully_indecomposable(g));
}

TEST(FineDm, SingleSccForFullMatrix) {
  const FineDm fine = fine_decomposition(make_full(8));
  EXPECT_EQ(fine.num_blocks, 1);
  for (vid_t j = 0; j < 8; ++j) EXPECT_EQ(fine.col_block[static_cast<std::size_t>(j)], 0);
}

TEST(FineDm, BlockDiagonalCyclesGiveOneBlockEach) {
  const BipartiteGraph g = make_block_diagonal({make_cycle(4), make_cycle(5), make_cycle(6)});
  const FineDm fine = fine_decomposition(g);
  EXPECT_EQ(fine.num_blocks, 3);
  // Columns of the same cycle share a block; different cycles differ.
  EXPECT_EQ(fine.col_block[0], fine.col_block[3]);
  EXPECT_NE(fine.col_block[0], fine.col_block[4]);
  EXPECT_NE(fine.col_block[4], fine.col_block[9]);
}

TEST(FineDm, TriangularMatrixFullyDecomposes) {
  // Upper triangular: every diagonal entry is its own block (n blocks).
  const BipartiteGraph g =
      graph_from_rows(4, 4, {{0, 1, 2, 3}, {1, 2, 3}, {2, 3}, {3}});
  const FineDm fine = fine_decomposition(g);
  EXPECT_EQ(fine.num_blocks, 4);
}

TEST(FineDm, RowBlocksFollowMatchedColumns) {
  const BipartiteGraph g = make_block_diagonal({make_cycle(4), make_cycle(5)});
  const FineDm fine = fine_decomposition(g);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    ASSERT_NE(fine.row_block[static_cast<std::size_t>(i)], kNil);
  }
  EXPECT_EQ(fine.row_block[0], fine.col_block[0]);
}

TEST(FineDm, HAndVColumnsExcluded) {
  const BipartiteGraph g = make_dm_structured(6, 10, 8, 9, 5, 2, 3);
  const FineDm fine = fine_decomposition(g);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (dm.col_part[static_cast<std::size_t>(j)] == DmPart::Square) {
      EXPECT_NE(fine.col_block[static_cast<std::size_t>(j)], kNil);
    } else {
      EXPECT_EQ(fine.col_block[static_cast<std::size_t>(j)], kNil);
    }
  }
  EXPECT_GE(fine.num_blocks, 1);
}

} // namespace
} // namespace bmh
