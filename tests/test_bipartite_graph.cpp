/// Unit tests for the CSR/CSC bipartite graph structure: construction
/// validation, dual-view consistency, transpose, and lookup helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(BipartiteGraph, EmptyGraphIsValid) {
  const BipartiteGraph g(0, 0, {0}, {});
  EXPECT_EQ(g.num_rows(), 0);
  EXPECT_EQ(g.num_cols(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(BipartiteGraph, RejectsBadRowPtrSize) {
  EXPECT_THROW(BipartiteGraph(2, 2, {0, 1}, {0}), std::invalid_argument);
}

TEST(BipartiteGraph, RejectsNonMonotoneRowPtr) {
  EXPECT_THROW(BipartiteGraph(2, 2, {0, 2, 1}, {0, 1}), std::invalid_argument);
}

TEST(BipartiteGraph, RejectsOutOfRangeColumn) {
  EXPECT_THROW(BipartiteGraph(2, 2, {0, 1, 2}, {0, 5}), std::invalid_argument);
}

TEST(BipartiteGraph, RejectsBoundsMismatch) {
  EXPECT_THROW(BipartiteGraph(1, 1, {0, 2}, {0}), std::invalid_argument);
}

TEST(BipartiteGraph, CscMirrorsCsr) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{0, 1}, {1, 2}, {0}});
  // Column 0 is touched by rows 0 and 2; column 1 by rows 0 and 1; etc.
  std::vector<vid_t> c0(g.col_neighbors(0).begin(), g.col_neighbors(0).end());
  std::vector<vid_t> c1(g.col_neighbors(1).begin(), g.col_neighbors(1).end());
  std::vector<vid_t> c2(g.col_neighbors(2).begin(), g.col_neighbors(2).end());
  EXPECT_EQ(c0, (std::vector<vid_t>{0, 2}));
  EXPECT_EQ(c1, (std::vector<vid_t>{0, 1}));
  EXPECT_EQ(c2, (std::vector<vid_t>{1}));
}

TEST(BipartiteGraph, DegreesAgreeAcrossViews) {
  const BipartiteGraph g = make_erdos_renyi(200, 150, 1000, 7);
  eid_t row_total = 0, col_total = 0;
  for (vid_t i = 0; i < g.num_rows(); ++i) row_total += g.row_degree(i);
  for (vid_t j = 0; j < g.num_cols(); ++j) col_total += g.col_degree(j);
  EXPECT_EQ(row_total, g.num_edges());
  EXPECT_EQ(col_total, g.num_edges());
}

TEST(BipartiteGraph, EveryCsrEdgeAppearsInCsc) {
  const BipartiteGraph g = make_erdos_renyi(64, 80, 400, 3);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    for (const vid_t j : g.row_neighbors(i)) {
      const auto nbrs = g.col_neighbors(j);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), i), nbrs.end())
          << "edge (" << i << "," << j << ") missing from CSC";
    }
  }
}

TEST(BipartiteGraph, HasEdgeMatchesStructure) {
  const BipartiteGraph g = graph_from_rows(2, 3, {{0, 2}, {1}});
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(-1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(BipartiteGraph, TransposeSwapsDimensionsAndEdges) {
  const BipartiteGraph g = make_erdos_renyi(50, 70, 300, 11);
  const BipartiteGraph t = g.transposed();
  EXPECT_EQ(t.num_rows(), g.num_cols());
  EXPECT_EQ(t.num_cols(), g.num_rows());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  for (vid_t i = 0; i < g.num_rows(); ++i)
    for (const vid_t j : g.row_neighbors(i)) EXPECT_TRUE(t.has_edge(j, i));
}

TEST(BipartiteGraph, DoubleTransposeIsIdentity) {
  const BipartiteGraph g = make_erdos_renyi(40, 40, 200, 13);
  EXPECT_TRUE(g.structurally_equal(g.transposed().transposed()));
}

TEST(BipartiteGraph, StructuralEqualityDetectsDifference) {
  const BipartiteGraph a = graph_from_rows(2, 2, {{0}, {1}});
  const BipartiteGraph b = graph_from_rows(2, 2, {{1}, {0}});
  EXPECT_TRUE(a.structurally_equal(a));
  EXPECT_FALSE(a.structurally_equal(b));
}

TEST(BipartiteGraph, SquareDetection) {
  EXPECT_TRUE(graph_from_rows(2, 2, {{0}, {1}}).square());
  EXPECT_FALSE(graph_from_rows(2, 3, {{0}, {1}}).square());
}

TEST(BipartiteGraph, CscRowIndicesAreSortedPerColumn) {
  const BipartiteGraph g = make_erdos_renyi(300, 300, 3000, 17);
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    const auto nbrs = g.col_neighbors(j);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end())) << "column " << j;
  }
}

} // namespace
} // namespace bmh
