/// Tests for the scaled-PDF neighbour sampling shared by both heuristics.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/choice.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "scaling/sinkhorn_knopp.hpp"

namespace bmh {
namespace {

TEST(Choice, EveryNonEmptyRowPicksANeighbor) {
  const BipartiteGraph g = make_erdos_renyi(500, 500, 2000, 3);
  const ScalingResult s = identity_scaling(g);
  const std::vector<vid_t> choice = sample_row_choices(g, s.dc, 7);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (g.row_degree(i) == 0) {
      EXPECT_EQ(choice[static_cast<std::size_t>(i)], kNil);
    } else {
      EXPECT_TRUE(g.has_edge(i, choice[static_cast<std::size_t>(i)])) << "row " << i;
    }
  }
}

TEST(Choice, ColumnSideSymmetric) {
  const BipartiteGraph g = make_erdos_renyi(300, 400, 1500, 5);
  const ScalingResult s = identity_scaling(g);
  const std::vector<vid_t> choice = sample_col_choices(g, s.dr, 9);
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (g.col_degree(j) == 0) {
      EXPECT_EQ(choice[static_cast<std::size_t>(j)], kNil);
    } else {
      EXPECT_TRUE(g.has_edge(choice[static_cast<std::size_t>(j)], j)) << "col " << j;
    }
  }
}

TEST(Choice, DeterministicInSeed) {
  const BipartiteGraph g = make_erdos_renyi(400, 400, 1600, 1);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  EXPECT_EQ(sample_row_choices(g, s.dc, 42), sample_row_choices(g, s.dc, 42));
  EXPECT_NE(sample_row_choices(g, s.dc, 42), sample_row_choices(g, s.dc, 43));
}

TEST(Choice, RowAndColumnStreamsAreIndependent) {
  // With the same seed, the row-side and column-side lanes must not be
  // correlated (different salts). On a symmetric structure correlated
  // streams would produce suspiciously many reciprocal picks.
  const BipartiteGraph g = make_full(200);
  const ScalingResult s = identity_scaling(g);
  const std::vector<vid_t> rc = sample_row_choices(g, s.dc, 11);
  const std::vector<vid_t> cc = sample_col_choices(g, s.dr, 11);
  int reciprocal = 0;
  for (vid_t i = 0; i < 200; ++i)
    if (cc[static_cast<std::size_t>(rc[static_cast<std::size_t>(i)])] == i) ++reciprocal;
  EXPECT_LT(reciprocal, 10);  // expectation is 1
}

TEST(Choice, FollowsScaledDistribution) {
  // Row 0 has two columns; force dc so column 1 carries 90% of the mass and
  // check the empirical pick frequency over many seeds.
  const BipartiteGraph g = graph_from_rows(1, 2, {{0, 1}});
  std::vector<double> dc = {0.1, 0.9};
  int picked_heavy = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const auto choice = sample_row_choices(g, dc, static_cast<std::uint64_t>(t));
    if (choice[0] == 1) ++picked_heavy;
  }
  const double freq = static_cast<double>(picked_heavy) / kTrials;
  EXPECT_NEAR(freq, 0.9, 0.03);
}

TEST(Choice, UniformWhenUnscaled) {
  const BipartiteGraph g = graph_from_rows(1, 4, {{0, 1, 2, 3}});
  const std::vector<double> dc(4, 1.0);
  std::vector<int> hist(4, 0);
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t)
    ++hist[static_cast<std::size_t>(sample_row_choices(g, dc, static_cast<std::uint64_t>(t))[0])];
  for (const int h : hist) EXPECT_NEAR(h, kTrials / 4, 5 * std::sqrt(kTrials / 4.0));
}

TEST(Choice, ZeroWeightNeighborsAlmostNeverPicked) {
  const BipartiteGraph g = graph_from_rows(1, 3, {{0, 1, 2}});
  const std::vector<double> dc = {0.0, 1.0, 0.0};
  for (int t = 0; t < 50; ++t) {
    const auto choice = sample_row_choices(g, dc, static_cast<std::uint64_t>(t));
    EXPECT_EQ(choice[0], 1);
  }
}

TEST(Choice, AllZeroWeightsFallBackToUniform) {
  const BipartiteGraph g = graph_from_rows(1, 3, {{0, 1, 2}});
  const std::vector<double> dc = {0.0, 0.0, 0.0};
  const auto choice = sample_row_choices(g, dc, 3);
  EXPECT_NE(choice[0], kNil);
  EXPECT_TRUE(g.has_edge(0, choice[0]));
}

TEST(Choice, SizeMismatchThrows) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  const std::vector<double> wrong(3, 1.0);
  EXPECT_THROW((void)sample_row_choices(g, wrong, 1), std::invalid_argument);
  EXPECT_THROW((void)sample_col_choices(g, wrong, 1), std::invalid_argument);
}

} // namespace
} // namespace bmh
