/// Tests for OneSidedMatch (Algorithm 2): validity under racy writes, the
/// Theorem 1 bound (statistically, and exactly-in-expectation on the
/// all-ones matrix), and robustness on graphs without perfect matchings.

#include <gtest/gtest.h>

#include "analysis/quality.hpp"
#include "core/choice.hpp"
#include "core/one_sided.hpp"
#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(OneSided, ValidOnZoo) {
  for (const auto& g : testing::small_graph_zoo()) {
    const Matching m = one_sided_match(g, 5, 3);
    testing::expect_valid(g, m, "one_sided zoo");
  }
}

TEST(OneSided, MeetsGuaranteeOnFullMatrix) {
  // The all-ones matrix is the tight case for Theorem 1: expected matched
  // fraction -> 1 - 1/e. Check the worst of 10 runs clears 0.632 - slack.
  const vid_t n = 4000;
  const BipartiteGraph g = make_full(n);
  double worst = 1.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Matching m = one_sided_match(g, 1, seed);
    worst = std::min(worst,
                     static_cast<double>(m.cardinality()) / static_cast<double>(n));
  }
  EXPECT_GE(worst, kOneSidedGuarantee - 0.02);
  // And it should not be much above the limit either (the bound is tight).
  EXPECT_LE(worst, kOneSidedGuarantee + 0.03);
}

class OneSidedFamilyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneSidedFamilyTest, MeetsGuaranteeOnPlantedPerfect) {
  const std::uint64_t seed = GetParam();
  const vid_t n = 3000;
  const BipartiteGraph g = make_planted_perfect(n, 3, seed);
  const Matching m = one_sided_match(g, 10, seed + 1);
  testing::expect_valid(g, m, "planted");
  EXPECT_GE(static_cast<double>(m.cardinality()) / static_cast<double>(n),
            kOneSidedGuarantee - 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneSidedFamilyTest, ::testing::Range<std::uint64_t>(0, 8));

TEST(OneSided, QualityImprovesWithScalingIterationsOnAdversarial) {
  const BipartiteGraph g = make_ks_adversarial(512, 16);
  const vid_t n = 512;
  double q0 = 0, q10 = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    q0 += static_cast<double>(one_sided_match(g, 0, seed).cardinality()) / n;
    q10 += static_cast<double>(one_sided_match(g, 10, seed).cardinality()) / n;
  }
  EXPECT_GT(q10, q0 + 0.1);  // scaling steers picks away from the full block
}

TEST(OneSided, WorksOnSprankDeficientGraphs) {
  const BipartiteGraph g = make_erdos_renyi(2000, 2000, 2 * 2000, 9);
  const vid_t rank = sprank(g);
  const Matching m = one_sided_match(g, 5, 1);
  testing::expect_valid(g, m, "deficient");
  EXPECT_GE(matching_quality(m, rank), kOneSidedGuarantee);
}

TEST(OneSided, WorksOnRectangularGraphs) {
  const BipartiteGraph g = make_erdos_renyi(1000, 1200, 3000, 4);
  const vid_t rank = sprank(g);
  const Matching m = one_sided_match(g, 5, 2);
  testing::expect_valid(g, m, "rectangular");
  EXPECT_GE(matching_quality(m, rank), kOneSidedGuarantee - 0.02);
}

TEST(OneSided, ZeroIterationsEqualsUniformPick) {
  // With no scaling the heuristic is still valid, just weaker.
  const BipartiteGraph g = make_erdos_renyi(1000, 1000, 4000, 8);
  const Matching m = one_sided_match(g, 0, 5);
  testing::expect_valid(g, m, "no scaling");
  EXPECT_GT(m.cardinality(), 0);
}

TEST(OneSided, CardinalityDeterministicInSeedGivenScaling) {
  // The per-row choices are deterministic, so the set of picked columns —
  // and hence |M| — is reproducible. Which row's racy write survives on a
  // contested column is scheduling-dependent (and deliberately so: the
  // paper's point is that any surviving write is fine), so we do NOT
  // compare the match arrays themselves.
  const BipartiteGraph g = make_planted_perfect(500, 3, 2);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const Matching a = one_sided_from_scaling(g, s, 7);
  const Matching b = one_sided_from_scaling(g, s, 7);
  EXPECT_EQ(a.cardinality(), b.cardinality());
  testing::expect_valid(g, a, "run a");
  testing::expect_valid(g, b, "run b");
  // Every matched column's winner must be a row that actually chose it.
  const std::vector<vid_t> choices = sample_row_choices(g, s.dc, 7);
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    const vid_t winner = a.col_match[static_cast<std::size_t>(j)];
    if (winner != kNil) {
      EXPECT_EQ(choices[static_cast<std::size_t>(winner)], j);
    }
  }
}

TEST(OneSided, CardinalityEqualsDistinctChosenColumns) {
  // Structural property: |M| = #{distinct columns picked}; every column
  // with at least one pick is matched.
  const BipartiteGraph g = make_full(64);
  const ScalingResult s = scale_sinkhorn_knopp(g, {1, 0.0});
  const Matching m = one_sided_from_scaling(g, s, 3);
  vid_t matched_cols = 0;
  for (vid_t j = 0; j < g.num_cols(); ++j)
    if (m.col_matched(j)) ++matched_cols;
  EXPECT_EQ(matched_cols, m.cardinality());
}

} // namespace
} // namespace bmh
