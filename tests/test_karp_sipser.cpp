/// Tests for the classic sequential Karp-Sipser baseline: validity,
/// optimality of Phase-1-only runs, the degree-one theorem, and the
/// documented failure mode on the Fig. 2 adversarial family.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/karp_sipser.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(KarpSipser, ValidOnZoo) {
  for (const auto& g : testing::small_graph_zoo()) {
    const Matching m = karp_sipser(g, 5);
    testing::expect_valid(g, m, "karp_sipser");
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(KarpSipser, ExactOnTrees) {
  // A path graph is consumed entirely by Phase 1, so KS is exact on it.
  const BipartiteGraph path =
      graph_from_rows(4, 4, {{0}, {0, 1}, {1, 2}, {2, 3}});
  KarpSipserStats stats;
  const Matching m = karp_sipser(path, 1, &stats);
  EXPECT_EQ(m.cardinality(), sprank(path));
  EXPECT_EQ(stats.phase2_matches, 0);
}

TEST(KarpSipser, ExactOnSingleCycle) {
  // One random pick breaks the cycle; Phase 1 finishes it optimally.
  const BipartiteGraph g = make_cycle(17);
  for (std::uint64_t seed = 0; seed < 5; ++seed)
    EXPECT_EQ(karp_sipser(g, seed).cardinality(), 17);
}

TEST(KarpSipser, PhaseOneOnlyWhenDegreeOneSeedsExist) {
  // Adversarial family with k<=1: the paper notes KS consumes the whole
  // graph in Phase 1 and is exact.
  const BipartiteGraph g = make_ks_adversarial(64, 1);
  KarpSipserStats stats;
  const Matching m = karp_sipser(g, 3, &stats);
  EXPECT_EQ(m.cardinality(), 64);
}

TEST(KarpSipser, DegradesOnAdversarialFamilyAsKGrows) {
  // Table 1's phenomenon: quality drops well below 1 for k >> 1 but stays
  // >= 1/2 (KS output is maximal).
  const vid_t n = 512;
  const BipartiteGraph g = make_ks_adversarial(n, 16);
  vid_t worst = n;
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    worst = std::min(worst, karp_sipser(g, seed).cardinality());
  const double quality = static_cast<double>(worst) / static_cast<double>(n);
  EXPECT_LT(quality, 0.95);  // measurably sub-optimal
  EXPECT_GE(quality, 0.5);
}

TEST(KarpSipser, NearPerfectOnSparseRandomGraphs) {
  // KS matches all but ~O(n^{1/5}) vertices of sparse random graphs; at
  // this size a 2% slack is generous.
  const BipartiteGraph g = make_erdos_renyi(4000, 4000, 3 * 4000, 11);
  const vid_t opt = sprank(g);
  const Matching m = karp_sipser(g, 1);
  EXPECT_GE(static_cast<double>(m.cardinality()),
            0.98 * static_cast<double>(opt));
}

TEST(KarpSipser, DeterministicInSeed) {
  const BipartiteGraph g = make_erdos_renyi(500, 500, 2000, 9);
  const Matching a = karp_sipser(g, 42);
  const Matching b = karp_sipser(g, 42);
  EXPECT_EQ(a.row_match, b.row_match);
}

TEST(KarpSipser, StatsAccountForAllMatches) {
  const BipartiteGraph g = make_erdos_renyi(300, 300, 1500, 2);
  KarpSipserStats stats;
  const Matching m = karp_sipser(g, 7, &stats);
  EXPECT_EQ(stats.phase1_matches + stats.phase2_matches, m.cardinality());
}

TEST(KarpSipser, HandlesRectangularAndDeficient) {
  const BipartiteGraph g = make_erdos_renyi(150, 200, 400, 21);
  const Matching m = karp_sipser(g, 3);
  testing::expect_valid(g, m, "rectangular");
  EXPECT_GE(2 * m.cardinality(), sprank(g));
}

TEST(KarpSipser, EmptyGraph) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{}, {}});
  EXPECT_EQ(karp_sipser(g, 1).cardinality(), 0);
}

TEST(KarpSipser, Phase2RetiresMatchedEdgesFromThePool) {
  // Regression for the live-pool leak: a matched edge used to stay in the
  // Phase-2 pool and be re-drawn later as a stale hit. With swap-removal on
  // every draw, each draw retires exactly one pool entry, so total draws
  // can never exceed the edge count — on dense graphs, where Phase 2 does
  // all the work, the leaky version exceeds this bound.
  const BipartiteGraph g = make_full(48);  // no degree-1 seeds: pure Phase 2
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    KarpSipserStats stats;
    const Matching m = karp_sipser(g, seed, &stats);
    EXPECT_LE(stats.phase2_draws, g.num_edges()) << "seed " << seed;
    EXPECT_GT(stats.phase2_matches, 0) << "seed " << seed;
    testing::expect_valid(g, m, "dense phase-2");
    EXPECT_TRUE(is_maximal_matching(g, m));
    // Any maximal matching of K_{n,n} is perfect.
    EXPECT_EQ(m.cardinality(), 48);
  }
}

TEST(KarpSipser, FixedSeedDenseGraphStaysValidMaximal) {
  // Fixed-seed regression on a dense ER instance: the pool fix changes the
  // draw sequence, so pin down that the result is still a deterministic,
  // valid, maximal matching with draws bounded by the edge count.
  const BipartiteGraph g = make_erdos_renyi(256, 256, 256 * 48, 17);
  KarpSipserStats stats;
  const Matching m = karp_sipser(g, 1234, &stats);
  testing::expect_valid(g, m, "dense er");
  EXPECT_TRUE(is_maximal_matching(g, m));
  EXPECT_LE(stats.phase2_draws, g.num_edges());
  EXPECT_EQ(stats.phase1_matches + stats.phase2_matches, m.cardinality());
  const Matching repeat = karp_sipser(g, 1234);
  EXPECT_EQ(m.row_match, repeat.row_match);
}

} // namespace
} // namespace bmh
