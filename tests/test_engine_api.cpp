/// \file test_engine_api.cpp
/// \brief Tests for the bmh::Engine session façade: lifecycle (warm batches
/// byte-identical to the legacy one-shot paths, second batch pure
/// cache/store hits), submit() futures and callbacks, concurrent submit
/// stress + determinism (the ASan/UBSan ctest job runs this), the serve
/// round trip at API level, thread auto-detection, and the GraphStore
/// prune budget + EngineConfig wiring.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "test_helpers.hpp"

namespace bmh {
namespace {

namespace fs = std::filesystem;

/// A small fast batch mixing generators, algorithms and pipeline shapes;
/// pinned and unpinned seeds both appear so the warm-engine test covers
/// the per-index derived keys too.
std::vector<JobSpec> mixed_batch() {
  std::istringstream in(
      "input=gen:er:n=512,deg=4 algo=two_sided iters=5\n"
      "input=gen:er:n=512,deg=4 algo=one_sided iters=5\n"
      "input=gen:er:n=256,deg=4,seed=7 algo=greedy\n"
      "input=gen:adversarial:n=256,k=8 algo=karp_sipser\n"
      "input=gen:mesh:nx=24 algo=one_sided augment=1\n"
      "input=gen:planted:n=512 algo=hopcroft_karp\n"
      "input=gen:powerlaw:n=512 algo=k_out k=2\n");
  return parse_job_specs(in);
}

std::string jsonl(const std::vector<JobResult>& results) {
  std::string out;
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    out += to_json_line(r, /*include_timings=*/false);
    out += '\n';
  }
  return out;
}

// ------------------------------------------------------------ lifecycle ---

TEST(EngineApi, WarmBatchesMatchLegacyOneShotsAndSecondBatchIsAllCacheHits) {
  const std::vector<JobSpec> jobs = mixed_batch();
  BatchOptions legacy_options;
  legacy_options.workers = 2;
  legacy_options.seed = 123;
  const std::string legacy_first = jsonl(run_batch(jobs, legacy_options));
  const std::string legacy_second = jsonl(run_batch(jobs, legacy_options));
  EXPECT_EQ(legacy_first, legacy_second);

  EngineConfig config;
  config.threads = 2;
  config.seed = 123;
  Engine engine(config);
  EXPECT_EQ(jsonl(engine.run_collect(jobs)), legacy_first);
  const Engine::Stats after_first = engine.stats();
  EXPECT_EQ(after_first.jobs_run, jobs.size());
  EXPECT_EQ(after_first.jobs_failed, 0u);
  EXPECT_GT(after_first.cold_builds, 0u);

  // The warm engine: same jobs, same derived per-index seeds, so every
  // graph — the unpinned randomized ones included — is already resident.
  EXPECT_EQ(jsonl(engine.run_collect(jobs)), legacy_first);
  const Engine::Stats after_second = engine.stats();
  EXPECT_EQ(after_second.cold_builds, after_first.cold_builds)
      << "second batch on a warm engine must perform zero cold graph builds";
  EXPECT_EQ(after_second.cache.hits, after_first.cache.hits + jobs.size());

  // The index-ordered streaming form emits the same bytes.
  std::string streamed;
  const std::size_t failed = engine.run(jobs, [&](const JobResult& r) {
    streamed += to_json_line(r, false);
    streamed += '\n';
  });
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(streamed, legacy_first);
}

TEST(EngineApi, ThreadsAutoDetectAndEmptyBatches) {
  EngineConfig config;
  config.threads = 0;  // auto: one per processor
  config.graph_cache_mb = 0;
  Engine engine(config);
  EXPECT_EQ(engine.threads(), num_procs());
  EXPECT_EQ(engine.config().threads, engine.threads());
  EXPECT_EQ(engine.cache(), nullptr);
  EXPECT_EQ(engine.store(), nullptr);

  const std::vector<JobSpec> none;
  EXPECT_TRUE(engine.run_collect(none).empty());
  EXPECT_EQ(engine.run(none, {}), 0u);
  EXPECT_EQ(engine.stats().jobs_run, 0u);
}

TEST(EngineApi, ResultsIndependentOfPoolSize) {
  const std::vector<JobSpec> jobs = mixed_batch();
  EngineConfig base;
  base.seed = 9;
  base.threads = 1;
  std::string reference;
  {
    Engine engine(base);
    reference = jsonl(engine.run_collect(jobs));
  }
  for (const int threads : {2, 4, 8}) {
    EngineConfig config = base;
    config.threads = threads;
    config.threads_per_job = threads % 3 + 1;
    Engine engine(config);
    EXPECT_EQ(jsonl(engine.run_collect(jobs)), reference) << threads;
  }
}

TEST(EngineApi, FailingJobsAreRecordsNotAborts) {
  std::istringstream in(
      "input=gen:cycle:n=64 algo=greedy\n"
      "input=mtx:/nonexistent/file.mtx\n"
      "input=gen:cycle:n=64 algo=nope\n");
  const std::vector<JobSpec> jobs = parse_job_specs(in);
  Engine engine;
  const std::vector<JobResult> results = engine.run_collect(jobs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[2].ok);
  EXPECT_NE(results[2].error.find("nope"), std::string::npos);
  const Engine::Stats stats = engine.stats();
  EXPECT_EQ(stats.jobs_run, 3u);
  EXPECT_EQ(stats.jobs_failed, 2u);
  EXPECT_EQ(engine.run(jobs, {}), 2u);
}

// --------------------------------------------------------------- submit ---

TEST(EngineApi, SubmitFutureMatchesBatchExecution) {
  // The i-th submit derives the same seed batch index i would, so a job
  // stream submitted one by one reproduces run_collect exactly.
  const std::vector<JobSpec> jobs = mixed_batch();
  EngineConfig config;
  config.seed = 123;
  config.threads = 2;

  std::vector<JobResult> collected;
  {
    Engine engine(config);
    collected = engine.run_collect(jobs);
  }
  Engine engine(config);
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (const JobSpec& job : jobs) futures.push_back(engine.submit(job));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    EXPECT_EQ(r.index, i);
    EXPECT_EQ(to_json_line(r, false), to_json_line(collected[i], false));
  }
}

TEST(EngineApi, SubmitCallbackAndExplicitIndex) {
  Engine engine;
  JobSpec job = parse_job_spec_line("name=j input=gen:cycle:n=64 algo=greedy");

  std::promise<JobResult> promise;
  std::future<JobResult> got = promise.get_future();
  engine.submit(job, [&](JobResult&& r) { promise.set_value(std::move(r)); },
                /*index=*/42);
  const JobResult r = got.get();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.index, 42u);
  EXPECT_EQ(r.seed, derive_job_seed(EngineConfig{}.seed, 42));

  // Explicit-index submits do not advance the automatic counter.
  const JobResult auto_indexed = engine.submit(job).get();
  EXPECT_EQ(auto_indexed.index, 0u);
}

TEST(EngineApi, ThrowingCallbackIsContainedNotFatal) {
  // Regression: a throwing submit callback used to propagate into the
  // worker loop and take the pool thread down with it. With one thread,
  // the follow-up job only completes if that same worker survived.
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  const JobSpec job = parse_job_spec_line("input=gen:cycle:n=64 algo=greedy");

  std::promise<void> reached;
  engine.submit(job, [&](JobResult&&) {
    reached.set_value();
    throw std::runtime_error("callback exploded");
  });
  reached.get_future().wait();

  const JobResult r = engine.submit(job).get();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(engine.metrics().counter_total("worker", "callback_errors"), 1u);
  EXPECT_EQ(engine.metrics().counter_total("worker", "jobs_run"), 2u);
}

TEST(EngineApi, PendingSubmitsSurviveUntilDestruction) {
  // The destructor drains accepted work: no future is ever left with a
  // broken promise.
  std::vector<std::future<JobResult>> futures;
  {
    EngineConfig config;
    config.threads = 2;
    Engine engine(config);
    const JobSpec job =
        parse_job_spec_line("input=gen:er:n=256,deg=4,seed=3 algo=greedy");
    for (int i = 0; i < 16; ++i) futures.push_back(engine.submit(job));
  }  // ~Engine runs with most submits still queued
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
}

// Regression for the submission-ring drain protocol (PR 9): a producer
// blocked *inside* submit() when the destructor begins — its presence
// registered in the engine's pending-submit count but its work item not
// yet visible to a ring pop — must be waited for, and its job must still
// run and deliver. The worker is parked inside a callback so the scenario
// is deterministic: the ring fills, one extra producer blocks on capacity,
// the destructor starts, and only then is the worker released.
TEST(EngineApi, DestructorDrainObservesBlockedInFlightSubmit) {
  std::optional<Engine> engine;
  EngineConfig config;
  config.threads = 1;
  config.submit_queue_depth = 4;
  engine.emplace(config);
  ASSERT_EQ(engine->submit_capacity(), 4u);

  const JobSpec job =
      parse_job_spec_line("input=gen:cycle:n=8 algo=greedy quality=0 seed=5");
  std::mutex mutex;
  std::condition_variable cv;
  bool worker_parked = false;
  bool release_worker = false;
  std::atomic<int> delivered{0};
  engine->submit(job, [&](JobResult&&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mutex);
    worker_parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_worker; });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return worker_parked; });
  }
  const auto count = [&delivered](JobResult&&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  for (int i = 0; i < 4; ++i) engine->submit(job, count);  // ring now full
  std::thread blocked_producer([&] { engine->submit(job, count); });
  // Give the producer time to block on capacity, then begin destruction
  // while it is still inside submit().
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread destroyer([&] { engine.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_worker = true;
    cv.notify_all();
  }
  blocked_producer.join();
  destroyer.join();
  EXPECT_EQ(delivered.load(std::memory_order_relaxed), 6);
}

// The multi-producer variant: several producers are blocked mid-submit on a
// full ring when teardown begins. Every accepted job — queued, claimed, or
// still waiting for a slot inside submit() — must deliver exactly once.
TEST(EngineApiStress, DestructorDrainRacesManyBlockedProducers) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  std::optional<Engine> engine;
  EngineConfig config;
  config.threads = 2;
  config.submit_queue_depth = 4;
  engine.emplace(config);

  const JobSpec job =
      parse_job_spec_line("input=gen:cycle:n=8 algo=greedy quality=0 seed=9");
  std::mutex mutex;
  std::condition_variable cv;
  int workers_parked = 0;
  bool release_workers = false;
  std::atomic<int> delivered{0};
  const auto parking = [&](JobResult&&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mutex);
    ++workers_parked;
    cv.notify_all();
    cv.wait(lock, [&] { return release_workers; });
  };
  engine->submit(job, parking);
  engine->submit(job, parking);
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return workers_parked == 2; });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        engine->submit(job, [&delivered](JobResult&&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        });
    });
  // 24 submissions against 4 slots with both workers parked: most
  // producers are blocked inside submit() by the time teardown starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread destroyer([&] { engine.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_workers = true;
    cv.notify_all();
  }
  for (std::thread& t : producers) t.join();
  destroyer.join();
  EXPECT_EQ(delivered.load(std::memory_order_relaxed),
            2 + kProducers * kPerProducer);
}

// The sanitizer CI job runs this under ASan+UBSan: many threads submitting
// against one engine so queueing, claiming, delivery and the cache all
// interleave.
TEST(EngineApiStress, ConcurrentSubmitsAreDeterministic) {
  EngineConfig config;
  config.threads = 4;
  Engine engine(config);

  // Jobs pin their seeds so the result is independent of submission
  // interleaving, and every submit carries the same explicit index so the
  // records must be bit-for-bit equal; the reference comes from the engine
  // itself, serially.
  const JobSpec job = parse_job_spec_line(
      "input=gen:er:n=256,deg=4,seed=11 algo=two_sided iters=5 seed=77");
  const auto submit_indexed = [&] {
    auto promise = std::make_shared<std::promise<JobResult>>();
    std::future<JobResult> future = promise->get_future();
    engine.submit(
        job, [promise](JobResult&& r) { promise->set_value(std::move(r)); },
        /*index=*/0);
    return future;
  };
  const std::string expected = to_json_line(submit_indexed().get(), false);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        JobResult r = submit_indexed().get();
        if (!r.ok || to_json_line(r, false) != expected) ++mismatches;
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const Engine::Stats stats = engine.stats();
  EXPECT_EQ(stats.jobs_run, 1u + kThreads * kPerThread);
  EXPECT_EQ(stats.jobs_failed, 0u);
  // One pinned instance: exactly one cold build, everything else cache hits.
  EXPECT_EQ(stats.cold_builds, 1u);
}

// ---------------------------------------------------------------- serve ---

TEST(EngineApi, ServeShapeRoundTripMatchesBatch) {
  // The --serve loop at API level: parse lines one by one, submit with the
  // explicit line index, collect completion-ordered output, compare as a
  // set against the batch run (completion order is nondeterministic with
  // more than one worker; bytes per record must match exactly).
  std::istringstream spec(
      "input=gen:er:n=512,deg=4 algo=two_sided iters=5\n"
      "input=gen:er:n=512,deg=4 algo=one_sided iters=5\n"
      "input=gen:mesh:nx=24 algo=one_sided augment=1\n"
      "input=gen:planted:n=512 algo=hopcroft_karp\n");
  const std::vector<JobSpec> jobs = parse_job_specs(spec);

  EngineConfig config;
  config.threads = 4;
  config.seed = 5;
  Engine engine(config);
  const std::vector<JobResult> batch = engine.run_collect(jobs);

  std::mutex mutex;
  std::multiset<std::string> served;
  std::atomic<std::size_t> pending{jobs.size()};
  std::promise<void> all_done;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobSpec job = jobs[i];
    if (job.name.empty()) job.name = "job" + std::to_string(i);
    engine.submit(
        std::move(job),
        [&](JobResult&& r) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            served.insert(to_json_line(r, false));
          }
          if (pending.fetch_sub(1) == 1) all_done.set_value();
        },
        i);
  }
  all_done.get_future().wait();

  std::multiset<std::string> expected;
  for (const JobResult& r : batch) expected.insert(to_json_line(r, false));
  EXPECT_EQ(served, expected);
}

// ------------------------------------------------------- store lifecycle ---

class EngineStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("bmh_engine_store_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(EngineStoreTest, PruneEvictsLeastRecentlyUsedFilesUnderBudget) {
  GraphStore store(dir_);
  // Five distinct instances, spilled oldest-first with distinct mtimes.
  // (ER instances differ slightly in edge count per seed, so file sizes
  // are tracked per key.)
  std::vector<std::string> keys;
  std::vector<std::size_t> file_bytes;
  for (int i = 0; i < 5; ++i) {
    const GraphSpec spec =
        parse_graph_spec("gen:er:n=256,deg=4,seed=" + std::to_string(i));
    const BipartiteGraph g = build_graph(spec, 1);
    keys.push_back(canonical_graph_key(spec, 1));
    ASSERT_TRUE(store.spill(keys.back(), g));
    file_bytes.push_back(serialized_graph_bytes(g, keys.back()));
    // Distinct mtimes so the LRU order is unambiguous on coarse clocks.
    const auto stamp =
        fs::last_write_time(store.path_for(keys.back())) - std::chrono::seconds(5 - i);
    fs::last_write_time(store.path_for(keys.back()), stamp);
  }

  // A load touches its file: key 0 becomes the most recently used.
  ASSERT_NE(store.try_load(keys[0]), nullptr);

  // Budget for ~2 files: the pruner must keep the touched key 0 and the
  // newest spill (key 4), evicting the stale middle.
  const std::size_t freed =
      store.prune(file_bytes[0] + file_bytes[4] + file_bytes[1] / 2);
  EXPECT_EQ(freed, file_bytes[1] + file_bytes[2] + file_bytes[3]);
  EXPECT_EQ(store.stats().pruned, 3u);
  EXPECT_TRUE(fs::exists(store.path_for(keys[0])));
  EXPECT_TRUE(fs::exists(store.path_for(keys[4])));
  for (int i = 1; i <= 3; ++i)
    EXPECT_FALSE(fs::exists(store.path_for(keys[static_cast<std::size_t>(i)]))) << i;

  // A pruned key degrades to a miss and can be re-spilled.
  EXPECT_EQ(store.try_load(keys[1]), nullptr);
  EXPECT_TRUE(
      store.spill(keys[1], build_graph(parse_graph_spec("gen:er:n=256,deg=4,seed=1"), 1)));
  EXPECT_NE(store.try_load(keys[1]), nullptr);
}

TEST_F(EngineStoreTest, SpillBudgetPrunesAutomaticallyAndFsyncSpills) {
  GraphStore::Options options;
  options.fsync = true;  // exercise the durability path end to end
  const GraphSpec probe = parse_graph_spec("gen:er:n=256,deg=4,seed=0");
  const std::size_t one_file =
      serialized_graph_bytes(build_graph(probe, 1), canonical_graph_key(probe, 1));
  options.max_bytes = 2 * one_file + one_file / 2;
  GraphStore store(dir_, options);

  for (int i = 0; i < 6; ++i) {
    const GraphSpec spec =
        parse_graph_spec("gen:er:n=256,deg=4,seed=" + std::to_string(i));
    ASSERT_TRUE(store.spill(canonical_graph_key(spec, 1), build_graph(spec, 1)));
  }
  const GraphStore::Stats stats = store.stats();
  EXPECT_EQ(stats.spills, 6u);
  EXPECT_GE(stats.pruned, 3u);
  EXPECT_EQ(stats.errors_total(), 0u);

  std::size_t resident_bytes = 0;
  std::size_t resident_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    resident_bytes += entry.file_size();
    ++resident_files;
  }
  EXPECT_LE(resident_bytes, options.max_bytes);
  EXPECT_EQ(resident_files, 6u - stats.pruned);
}

TEST_F(EngineStoreTest, StaleSpillTemporariesAreSweptButFreshOnesSurvive) {
  // A crashed spiller's temporary is outside the .bmg budget; the opening
  // scan and every prune must reclaim it once it is clearly abandoned,
  // while a concurrent spiller's fresh temporary is never raced.
  fs::create_directories(dir_);
  const std::string stale = dir_ + "/deadbeef00000000.bmg.tmp.1234.0";
  const std::string fresh = dir_ + "/deadbeef00000001.bmg.tmp.5678.0";
  std::ofstream(stale) << "half-written spill";
  std::ofstream(fresh) << "in-flight spill";
  fs::last_write_time(stale, fs::file_time_type::clock::now() - std::chrono::hours(1));

  GraphStore store(dir_);  // the opening scan sweeps the stale orphan
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));

  // And so does prune, for orphans appearing while the store is live.
  std::ofstream(stale) << "another orphan";
  fs::last_write_time(stale, fs::file_time_type::clock::now() - std::chrono::hours(1));
  (void)store.prune(1 << 20);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  EXPECT_EQ(store.stats().pruned, 0u);  // temporaries are not budget prunes
}

TEST_F(EngineStoreTest, EngineConfigWiresBudgetAndSecondBatchServesFromStore) {
  EngineConfig config;
  config.seed = 3;
  config.graph_store_dir = dir_;
  config.store_budget_mb = 64;  // roomy: nothing should be pruned
  config.store_fsync = true;
  std::istringstream in(
      "input=gen:er:n=256,deg=4,seed=1 algo=greedy\n"
      "input=gen:er:n=256,deg=4,seed=2 algo=greedy\n");
  const std::vector<JobSpec> jobs = parse_job_specs(in);

  std::string first_jsonl;
  {
    Engine engine(config);
    ASSERT_NE(engine.store(), nullptr);
    EXPECT_EQ(engine.store()->options().max_bytes, config.store_budget_mb << 20);
    EXPECT_TRUE(engine.store()->options().fsync);
    first_jsonl = jsonl(engine.run_collect(jobs));
    EXPECT_EQ(engine.store()->stats().spills, 2u);
    EXPECT_EQ(engine.store()->stats().pruned, 0u);
  }

  // "Restarted process": a fresh engine over the warm directory serves
  // byte-identical results with zero cold builds — the store absorbs every
  // memory miss.
  Engine restarted(config);
  EXPECT_EQ(jsonl(restarted.run_collect(jobs)), first_jsonl);
  const Engine::Stats stats = restarted.stats();
  EXPECT_EQ(stats.cold_builds, 0u);
  EXPECT_EQ(stats.cache.store_hits, 2u);
}

} // namespace
} // namespace bmh
